//! The E1–E19 experiment suite.
//!
//! The paper is a theory extended abstract with no empirical section, so
//! the reproduction turns every quantitative claim into an experiment
//! (see `DESIGN.md` §5 for the claim ↔ experiment index):
//!
//! | Exp | Claim |
//! |-----|-------|
//! | E1  | Thm 3.1 — Zero Radius: exact output, `O(log n/α)` rounds |
//! | E2  | Thm 3.2 — Select: exact closest, `≤ k(D+1)` probes |
//! | E3  | Lemma 4.1 — random-partition success probability |
//! | E4  | Thm 4.4 — Small Radius: error ≤ 5D, cost scaling |
//! | E5  | Thm 5.3 — Coalesce: ≤ 1/α candidates, unique 2D-closest |
//! | E6  | Thm 5.4 — Large Radius: error `O(D/α)`, polylog cost |
//! | E7  | Thm 6.1 — RSelect: `O(D)` choice, `O(|V|²·log n)` probes |
//! | E8  | Thm 1.1 — headline: constant stretch, polylog rounds, vs solo |
//! | E9  | §1/§2 — adversarial robustness vs spectral/kNN baselines |
//! | E10 | §6 — anytime behaviour under unknown α |
//! | E11 | §1.1 — leverage: community size vs cost |
//! | E12 | ablation of the paper's constants (s, K, vote threshold) |
//! | E13 | §1 motivation — tracking a drifting environment |
//! | E14 | \[4\]/§2 — the weaker one-good-object goal and its cost shape |
//! | E15 | abstract — lockstep P2P execution: fidelity + barrier overhead |
//! | E16 | \[8\]\[9\]/§2 — the prediction-mistake model contrast |
//! | E17 | fault model — noise/crash robustness, graceful degradation |
//! | E18 | serving layer — online arrival/churn, probe cost + discrepancy |
//! | E19 | durability — crash recovery from the write-ahead tick log |

pub mod e01_zero_radius;
pub mod e02_select;
pub mod e03_partition;
pub mod e04_small_radius;
pub mod e05_coalesce;
pub mod e06_large_radius;
pub mod e07_rselect;
pub mod e08_main;
pub mod e09_adversarial;
pub mod e10_anytime;
pub mod e11_leverage;
pub mod e12_ablation;
pub mod e13_dynamic;
pub mod e14_one_good;
pub mod e15_lockstep;
pub mod e16_prediction;
pub mod e17_robustness;
pub mod e18_arrival;
pub mod e19_recovery;

use crate::table::Table;
use std::collections::BTreeMap;
use tmwia_billboard::PlayerId;
use tmwia_model::BitVec;

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Scaled-down sweep for CI/integration tests.
    pub quick: bool,
    /// Master seed; the whole suite is deterministic given it.
    pub seed: u64,
    /// Trials per configuration point.
    pub trials: usize,
}

impl ExpConfig {
    /// Full-scale configuration (bench binaries).
    pub fn full(seed: u64) -> Self {
        ExpConfig {
            quick: false,
            seed,
            trials: 3,
        }
    }

    /// Quick configuration (integration tests).
    pub fn quick(seed: u64) -> Self {
        ExpConfig {
            quick: true,
            seed,
            trials: 2,
        }
    }

    /// Pick a sweep by scale.
    pub fn pick<'a, T>(&self, full: &'a [T], quick: &'a [T]) -> &'a [T] {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// An experiment registry entry: `(id, name, runner)`.
pub type Experiment = (&'static str, &'static str, fn(&ExpConfig) -> Table);

/// All experiments in order — used by the bench binaries and the docs
/// generator.
pub fn all() -> Vec<Experiment> {
    vec![
        ("e1", "Zero Radius (Thm 3.1)", e01_zero_radius::run),
        ("e2", "Select (Thm 3.2)", e02_select::run),
        ("e3", "Partition success (Lemma 4.1)", e03_partition::run),
        ("e4", "Small Radius (Thm 4.4)", e04_small_radius::run),
        ("e5", "Coalesce (Thm 5.3)", e05_coalesce::run),
        ("e6", "Large Radius (Thm 5.4)", e06_large_radius::run),
        ("e7", "RSelect (Thm 6.1)", e07_rselect::run),
        ("e8", "Headline (Thm 1.1)", e08_main::run),
        (
            "e9",
            "Adversarial robustness (§1, §2)",
            e09_adversarial::run,
        ),
        ("e10", "Anytime / unknown α (§6)", e10_anytime::run),
        ("e11", "Community leverage (§1.1)", e11_leverage::run),
        ("e12", "Constant ablation (§4, §5)", e12_ablation::run),
        ("e13", "Dynamic tracking (§1 motivation)", e13_dynamic::run),
        ("e14", "One good object ([4], §2)", e14_one_good::run),
        ("e15", "Lockstep P2P fidelity (abstract)", e15_lockstep::run),
        (
            "e16",
            "Prediction-mistake model ([8][9], §2)",
            e16_prediction::run,
        ),
        (
            "e17",
            "Noise/crash robustness (fault model)",
            e17_robustness::run,
        ),
        (
            "e18",
            "Online arrival/churn (serving layer)",
            e18_arrival::run,
        ),
        (
            "e19",
            "Crash recovery (write-ahead tick log)",
            e19_recovery::run,
        ),
    ]
}

/// Convert a per-player output map into a dense `Vec` indexed by player
/// id (players absent from the map get zero vectors) so the metrics
/// helpers can index it.
pub(crate) fn dense_outputs(out: &BTreeMap<PlayerId, BitVec>, n: usize, m: usize) -> Vec<BitVec> {
    (0..n)
        .map(|p| out.get(&p).cloned().unwrap_or_else(|| BitVec::zeros(m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_respects_scale() {
        let full = [1, 2, 3];
        let quick = [1];
        assert_eq!(ExpConfig::full(0).pick(&full, &quick), &full);
        assert_eq!(ExpConfig::quick(0).pick(&full, &quick), &quick);
    }

    #[test]
    fn registry_is_complete_and_unique() {
        let a = all();
        assert_eq!(a.len(), 19);
        let mut ids: Vec<&str> = a.iter().map(|(id, _, _)| *id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 19);
    }

    #[test]
    fn dense_outputs_fills_gaps() {
        let mut map = BTreeMap::new();
        map.insert(1usize, BitVec::ones(4));
        let dense = dense_outputs(&map, 3, 4);
        assert_eq!(dense.len(), 3);
        assert_eq!(dense[0].count_ones(), 0);
        assert_eq!(dense[1].count_ones(), 4);
    }
}
