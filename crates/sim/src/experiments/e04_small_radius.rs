//! **E4 — Small Radius (Theorem 4.4).**
//!
//! Claim: with probability `1 − 2^{−Ω(K)}` every `(α, D)`-typical player
//! outputs within `5D` of its truth, in `O(K·D^{3/2}(D + log n)/α)`
//! probing rounds.
//!
//! Workload: planted communities, (a) sweeping `D` at fixed `n = m`,
//! (b) sweeping `n = m` at fixed `D`. Reported: community discrepancy vs
//! the `5D` bound, fraction of members within the bound, and round
//! complexity (with the solo column for scale; at laptop sizes the
//! per-player probe *cache* caps rounds at `m`, so the cost column shows
//! `min(m, s·threshold)` — the theorem's shape emerges in the uncapped
//! regime `m ≫ s·log n/α`, which the last column flags).

use super::{dense_outputs, ExpConfig};
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_billboard::ProbeEngine;
use tmwia_core::{small_radius, Params};
use tmwia_model::generators::planted_community;
use tmwia_model::metrics::CommunityReport;

struct Trial {
    disc: f64,
    within: f64,
    rounds: u64,
}

fn one(n: usize, d: usize, alpha: f64, params: &Params, seed: u64) -> Trial {
    let k = ((alpha * n as f64) as usize).max(2);
    let inst = planted_community(n, n, k, d, seed);
    let community = inst.community().to_vec();
    let engine = ProbeEngine::new(inst.truth);
    let players: Vec<usize> = (0..n).collect();
    let objects: Vec<usize> = (0..n).collect();
    let out = small_radius(&engine, &players, &objects, alpha, d, params, n, seed);
    let outputs = dense_outputs(&out, n, n);
    let report = CommunityReport::evaluate(engine.truth(), &outputs, &community);
    let within = community
        .iter()
        .filter(|&&p| outputs[p].hamming(engine.truth().row(p)) <= 5 * d)
        .count() as f64
        / community.len() as f64;
    let rounds = community
        .iter()
        .map(|&p| engine.probes_of(p))
        .max()
        .unwrap_or(0);
    Trial {
        disc: report.discrepancy as f64,
        within,
        rounds,
    }
}

/// Run E4.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = Params::practical();
    let alpha = 0.5;

    let mut table = Table::new(
        "E4: Small Radius — error ≤ 5D and cost scaling (Theorem 4.4)",
        &[
            "n=m",
            "D",
            "disc",
            "bound 5D",
            "within-5D frac",
            "rounds",
            "solo",
        ],
    );
    table.note("expect: disc ≤ 5D (whp), rounds grow with D until the probe cache caps at m");

    // (a) D sweep at fixed n.
    let n_fixed = if cfg.quick { 128 } else { 512 };
    let ds: &[usize] = cfg.pick(&[2, 4, 8, 16], &[2, 8]);
    for &d in ds {
        let trials = run_trials(cfg.trials, cfg.seed ^ (d as u64) << 4, |seed| {
            one(n_fixed, d, alpha, &params, seed)
        });
        push_row(&mut table, n_fixed, d, &trials);
    }

    // (b) n sweep at D = 2, where n ≥ 1024 leaves the cache-saturated
    // regime (s·threshold < m) and the sublinear cost shape shows.
    let d_fixed = 2;
    let sizes: &[usize] = cfg.pick(&[256, 1024, 2048], &[256]);
    for &n in sizes {
        if n == n_fixed {
            continue; // already covered above when d_fixed ∈ ds
        }
        let trials = run_trials(cfg.trials, cfg.seed ^ (n as u64) << 20, |seed| {
            one(n, d_fixed, alpha, &params, seed)
        });
        push_row(&mut table, n, d_fixed, &trials);
    }
    table
}

fn push_row(table: &mut Table, n: usize, d: usize, trials: &[Trial]) {
    let disc = Summary::of(&trials.iter().map(|t| t.disc).collect::<Vec<_>>());
    let within = Summary::of(&trials.iter().map(|t| t.within).collect::<Vec<_>>());
    let rounds = Summary::of_ints(trials.iter().map(|t| t.rounds));
    table.push(vec![
        n.to_string(),
        d.to_string(),
        disc.pm(),
        (5 * d).to_string(),
        fnum(within.mean),
        rounds.pm(),
        n.to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrepancy_bounded_by_5d() {
        let t = run(&ExpConfig::quick(4));
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let disc: f64 = row[2].split('±').next().unwrap().trim().parse().unwrap();
            let bound: f64 = row[3].parse().unwrap();
            assert!(disc <= bound, "5D bound violated: {row:?}");
            let within: f64 = row[4].parse().unwrap();
            assert!(within > 0.9, "too many members above 5D: {row:?}");
        }
    }
}
