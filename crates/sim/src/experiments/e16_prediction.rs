//! **E16 — the prediction-mistake model comparison (§2, refs \[8\]\[9\]).**
//!
//! §2 contrasts the paper's charging model with relation-learning:
//! there, the true entry is revealed *after every prediction* for free
//! and only mistakes cost; the paper charges for every revealed entry
//! and most estimates are never exposed. The claim: weighted-majority
//! style learners "still suffer from polynomial overhead … even in the
//! simple 'noise-free' case where all the players in a large (constant
//! fraction) community are identical."
//!
//! This experiment runs the classic row-expert weighted-majority
//! learner on noise-free identical communities, sweeping community size
//! and `m`, and reports mistakes per member next to what the
//! interactive algorithm pays in *probes* on the same instance. The
//! models are incomparable one-for-one (free information vs unit-cost
//! probes); the reproducible *shape* is that WM's per-member cost keeps
//! a `Θ(m/k)`-scale term (someone must be first at every column) plus a
//! trust-learning term, while Zero Radius members pay `O(log n/α)`
//! probes outright.

use super::ExpConfig;
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_baselines::prediction::weighted_majority;
use tmwia_billboard::ProbeEngine;
use tmwia_core::{reconstruct_known, Params};
use tmwia_model::generators::planted_community;

/// Run E16.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = Params::practical();
    let m = if cfg.quick { 128 } else { 512 };
    let n = m;
    let ks: Vec<usize> = if cfg.quick {
        vec![n / 8, n / 2]
    } else {
        vec![n / 16, n / 8, n / 4, n / 2]
    };

    let mut table = Table::new(
        "E16: prediction-mistake model (WM, refs [8][9]) vs interactive probes (§2)",
        &[
            "n=m",
            "k=|P*|",
            "WM mistakes/member",
            "~m/(2k)+",
            "ZR probes/member",
            "ZR exact frac",
        ],
    );
    table.note("noise-free identical communities; WM gets every entry revealed free after");
    table.note("predicting; the interactive model pays per reveal. Shapes, not budgets.");

    for &k in &ks {
        let trials = run_trials(cfg.trials, cfg.seed ^ (k as u64) << 6, |seed| {
            let inst = planted_community(n, m, k, 0, seed);
            let community = inst.community().to_vec();
            // Prediction model.
            let wm = weighted_majority(&inst.truth, 0.5, seed);
            let wm_mean = wm.mean_of(&community);
            // Interactive model on the same instance.
            let engine = ProbeEngine::new(inst.truth.clone());
            let players: Vec<usize> = (0..n).collect();
            let rec = reconstruct_known(&engine, &players, k as f64 / n as f64, 0, &params, seed);
            let probes = community
                .iter()
                .map(|&p| engine.probes_of(p))
                .max()
                .unwrap_or(0);
            let exact = community
                .iter()
                .filter(|&&p| &rec.outputs[&p] == inst.truth.row(p))
                .count() as f64
                / community.len() as f64;
            (wm_mean, probes as f64, exact)
        });
        let wm = Summary::of(&trials.iter().map(|t| t.0).collect::<Vec<_>>());
        let zr = Summary::of(&trials.iter().map(|t| t.1).collect::<Vec<_>>());
        let exact = Summary::of(&trials.iter().map(|t| t.2).collect::<Vec<_>>());
        table.push(vec![
            n.to_string(),
            k.to_string(),
            wm.pm(),
            fnum(m as f64 / (2.0 * k as f64)),
            zr.pm(),
            fnum(exact.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wm_pays_real_mistakes_zr_pays_logarithmic_probes() {
        let t = run(&ExpConfig::quick(16));
        let parse =
            |cell: &str| -> f64 { cell.split('±').next().unwrap().trim().parse().unwrap() };
        for row in &t.rows {
            let wm = parse(&row[2]);
            assert!(wm > 1.0, "WM implausibly free: {row:?}");
            let exact: f64 = row[5].parse().unwrap();
            assert!(exact > 0.9, "ZR failed its side: {row:?}");
        }
        // WM's per-member cost falls with k (the m/(2k) term) —
        // the overhead shape §2 describes.
        let first = parse(&t.rows[0][2]);
        let last = parse(&t.rows.last().unwrap()[2]);
        assert!(last < first, "WM cost did not amortize with k: {t:?}");
    }
}
