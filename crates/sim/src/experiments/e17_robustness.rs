//! **E17 — Noise/crash robustness (fault-injection layer).**
//!
//! The paper's theorems assume honest answers and full participation.
//! E17 measures how the implementation degrades when neither holds:
//! a seeded [`FaultPlan`] flips each probe answer independently with
//! probability `ε` and crash-stops a fixed fraction of the players
//! after their 8th probe. Reported per `(ε, crash)` cell, for the
//! *survivors* (community members outside the crash set):
//!
//! * `err*` — the worst survivor's Hamming error counted only on
//!   coordinates whose probes the plan did **not** flip for that player
//!   (the "clean mass"; flipped coordinates are wrong by construction,
//!   so charging them would measure the noise, not the algorithm);
//! * `rounds` — survivor round complexity, and `Δrounds` — the extra
//!   rounds relative to a fault-free paired run on the same instance;
//! * `flip`/`deny` — the cost ledger's totals of corrupted paid probes
//!   and denied (free) attempts.
//!
//! The `ε = 0, crash = 0` row runs the engine with `FaultPlan::none()`
//! and must match the paired clean run exactly (`err* = 0, Δrounds =
//! 0`) — the zero-overhead/bit-identity claim, end to end.
//!
//! Fault-injected runs use the ordinary parallel schedule: crash and
//! budget deadness resolve against per-round
//! [`tmwia_billboard::LivenessEpoch`] snapshots, and the part/group
//! fan-outs phase themselves under a fault plan, so the numbers are
//! schedule-independent (byte-identical to the
//! [`tmwia_billboard::run_sequential`] oracle — pinned by
//! `tests/fault_determinism.rs`).

use super::{dense_outputs, ExpConfig};
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_billboard::{FaultPlan, ProbeEngine};
use tmwia_core::{reconstruct_known, Params};
use tmwia_model::generators::planted_community;
use tmwia_model::rng::{derive, tags};

/// Community diameter: small enough for the Small Radius regime, large
/// enough that the run exercises partitioning and Select under noise.
const DIAMETER: usize = 4;
/// Crashed players stop answering after this many paid probes.
const CRASH_ROUND: u64 = 8;

/// One trial's measurements.
struct Trial {
    survivors: usize,
    err_clean: u64,
    rounds: u64,
    delta_rounds: i64,
    flipped: u64,
    denied: u64,
}

/// Run E17.
pub fn run(cfg: &ExpConfig) -> Table {
    let sizes: &[usize] = cfg.pick(&[256], &[96]);
    let epsilons: &[f64] = cfg.pick(&[0.0, 0.01, 0.05, 0.1], &[0.0, 0.1]);
    let crashes: &[f64] = cfg.pick(&[0.0, 0.1, 0.25], &[0.0, 0.25]);
    let params = Params::practical();
    let alpha = 0.5;

    let mut table = Table::new(
        "E17: noise/crash robustness (fault-injection layer)",
        &[
            "n=m", "eps", "crash", "surv", "err*", "rounds", "d-rounds", "flip", "deny",
        ],
    );
    table.note(
        "err* = worst survivor error on unflipped coordinates; d-rounds vs fault-free paired run",
    );
    table.note(format!(
        "D = {DIAMETER}, crash after {CRASH_ROUND} probes, alpha = {alpha}, preset = practical, trials = {}",
        cfg.trials
    ));

    for &n in sizes {
        for &eps in epsilons {
            for &cf in crashes {
                let cell_seed = cfg.seed
                    ^ ((n as u64) << 16)
                    ^ ((eps * 1000.0) as u64) << 8
                    ^ (cf * 100.0) as u64;
                let trials = run_trials(cfg.trials, cell_seed, |seed| {
                    run_trial(n, alpha, eps, cf, &params, seed)
                });
                let surv = Summary::of(
                    &trials
                        .iter()
                        .map(|t| t.survivors as f64)
                        .collect::<Vec<_>>(),
                );
                let err = Summary::of_ints(trials.iter().map(|t| t.err_clean));
                let rounds = Summary::of_ints(trials.iter().map(|t| t.rounds));
                let delta = Summary::of(
                    &trials
                        .iter()
                        .map(|t| t.delta_rounds as f64)
                        .collect::<Vec<_>>(),
                );
                let flipped = Summary::of_ints(trials.iter().map(|t| t.flipped));
                let denied = Summary::of_ints(trials.iter().map(|t| t.denied));
                table.push(vec![
                    n.to_string(),
                    fnum(eps),
                    fnum(cf),
                    fnum(surv.mean),
                    err.pm(),
                    rounds.pm(),
                    fnum(delta.mean),
                    fnum(flipped.mean),
                    fnum(denied.mean),
                ]);
            }
        }
    }
    table
}

/// One (instance, plan) trial: a faulty run and its fault-free pair.
fn run_trial(n: usize, alpha: f64, eps: f64, cf: f64, params: &Params, seed: u64) -> Trial {
    let k = ((alpha * n as f64) as usize).max(2);
    let inst = planted_community(n, n, k, DIAMETER, seed);
    let community = inst.community().to_vec();
    let players: Vec<usize> = (0..n).collect();

    // Fault-free paired run on the same instance (parallel schedule is
    // fine: no fault layer, so probe values are order-independent).
    let clean_engine = ProbeEngine::new(inst.truth.clone());
    reconstruct_known(&clean_engine, &players, alpha, DIAMETER, params, seed);
    let clean_rounds = community
        .iter()
        .map(|&p| clean_engine.probes_of(p))
        .max()
        .unwrap_or(0);

    let plan = FaultPlan {
        seed: derive(seed, tags::FAULT_CRASH, 0),
        flip_prob: eps,
        crash_fraction: cf,
        crash_round: CRASH_ROUND,
        ..FaultPlan::none()
    };
    let engine = ProbeEngine::with_faults(inst.truth.clone(), plan);
    let rec = reconstruct_known(&engine, &players, alpha, DIAMETER, params, seed);
    let outputs = dense_outputs(&rec.outputs, n, n);

    let crashed = engine.crashed_players();
    let survivors: Vec<usize> = community
        .iter()
        .copied()
        .filter(|p| !crashed.contains(p))
        .collect();
    let err_clean = survivors
        .iter()
        .map(|&p| {
            (0..n)
                .filter(|&j| {
                    let flipped = engine.fault_state().is_some_and(|f| f.is_flipped(p, j));
                    !flipped && outputs[p].get(j) != inst.truth.value(p, j)
                })
                .count() as u64
        })
        .max()
        .unwrap_or(0);
    let rounds = survivors
        .iter()
        .map(|&p| engine.probes_of(p))
        .max()
        .unwrap_or(0);
    let ledger = engine.ledger();
    Trial {
        survivors: survivors.len(),
        err_clean,
        rounds,
        delta_rounds: rounds as i64 - clean_rounds as i64,
        flipped: ledger.flipped_total(),
        denied: ledger.denied_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape() {
        let t = run(&ExpConfig::quick(1));
        assert_eq!(t.columns.len(), 9);
        assert_eq!(t.rows.len(), 4); // 1 size × 2 eps × 2 crash
        for row in &t.rows {
            let eps: f64 = row[1].parse().unwrap();
            let cf: f64 = row[2].parse().unwrap();
            let surv: f64 = row[3].parse().unwrap();
            if cf == 0.0 {
                assert_eq!(surv, 48.0, "no crashes ⇒ whole community survives");
            } else {
                assert!(surv < 48.0, "crash fraction must bite: {row:?}");
            }
            if eps == 0.0 && cf == 0.0 {
                let err: f64 = row[4].split('±').next().unwrap().trim().parse().unwrap();
                let delta: f64 = row[6].parse().unwrap();
                assert!(
                    err <= (5 * DIAMETER) as f64,
                    "none-plan run exceeds 5D: {row:?}"
                );
                assert_eq!(delta, 0.0, "none plan must match paired clean run: {row:?}");
            }
        }
    }
}
