//! **E2 — Select (Theorem 3.2).**
//!
//! Claim: Select outputs the closest candidate and spends at most
//! `k(D+1)` probes.
//!
//! Workload: (a) the adversarial construction that forces each of the
//! `k−1` wrong candidates to absorb `D+1` probes (the worst case), and
//! (b) random candidate sets at controlled distances (the typical case,
//! usually far below the bound). Reported per `(k, D)`: worst-case
//! probes vs the `k(D+1)` bound, random-case mean probes, and the
//! fraction of runs returning a true closest candidate (must be 1.0).

use super::ExpConfig;
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_core::select_values;
use tmwia_model::generators::{at_distance, select_hard_case};
use tmwia_model::rng::{rng_for, tags};
use tmwia_model::BitVec;

fn to_rows(cands: &[BitVec]) -> Vec<Vec<bool>> {
    cands
        .iter()
        .map(|c| (0..c.len()).map(|j| c.get(j)).collect())
        .collect()
}

/// Run E2.
pub fn run(cfg: &ExpConfig) -> Table {
    let ks: &[usize] = cfg.pick(&[2, 4, 8, 16], &[2, 8]);
    let ds: &[usize] = cfg.pick(&[0, 2, 8, 32], &[0, 8]);
    let m = if cfg.quick { 1024 } else { 4096 };

    let mut table = Table::new(
        "E2: Select — probe cost vs the k(D+1) bound (Theorem 3.2)",
        &[
            "k",
            "D",
            "worst probes",
            "bound k(D+1)",
            "random probes",
            "correct frac",
        ],
    );
    table.note("expect: worst ≤ bound (typically = bound − D on this construction), correct = 1");

    for &k in ks {
        for &d in ds {
            if (k - 1) * (d + 1) > m {
                continue;
            }
            // (a) adversarial worst case.
            let (target, cands) = select_hard_case(m, k, d, cfg.seed ^ ((k * 131 + d) as u64));
            let r = select_values(&to_rows(&cands), |j| target.get(j), d);
            let worst = r.probes;
            assert!(cands[r.winner] == target, "worst case returned non-closest");

            // (b) random candidates at distances d, d+1, …
            let trials = run_trials(
                cfg.trials.max(3),
                cfg.seed ^ (k as u64) << 16 ^ d as u64,
                |seed| {
                    let mut rng = rng_for(seed, tags::TRIAL, 0);
                    let target = BitVec::random(m, &mut rng);
                    let cands: Vec<BitVec> = (0..k)
                        .map(|i| at_distance(&target, d + i, &mut rng))
                        .collect();
                    let r = select_values(&to_rows(&cands), |j| target.get(j), d);
                    // lint:allow(panic-hygiene) cands holds k >= 1 vectors built just above
                    let best = cands.iter().map(|c| c.hamming(&target)).min().unwrap();
                    let correct = cands[r.winner].hamming(&target) == best;
                    (r.probes as f64, correct)
                },
            );
            let probes = Summary::of(&trials.iter().map(|t| t.0).collect::<Vec<_>>());
            let correct = trials.iter().filter(|t| t.1).count() as f64 / trials.len() as f64;
            table.push(vec![
                k.to_string(),
                d.to_string(),
                worst.to_string(),
                (k * (d + 1)).to_string(),
                fnum(probes.mean),
                fnum(correct),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_on_every_row() {
        let t = run(&ExpConfig::quick(2));
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let worst: usize = row[2].parse().unwrap();
            let bound: usize = row[3].parse().unwrap();
            assert!(worst <= bound, "bound violated: {row:?}");
            let correct: f64 = row[5].parse().unwrap();
            assert_eq!(correct, 1.0, "incorrect selection: {row:?}");
        }
    }
}
