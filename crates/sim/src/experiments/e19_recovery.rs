//! **E19 — Crash recovery (write-ahead tick log).**
//!
//! The serving layer's durability claim is exact: a service killed
//! mid-run and restarted from its write-ahead log must reach a state
//! **byte-identical** to one that never crashed — same transcript, same
//! registry, same probe memos, same sealed snapshot. E19 measures that
//! claim across the crash/recovery parameter grid:
//!
//! * `cut` — fraction of the load run completed before the simulated
//!   crash (the rest is re-executed live after replay);
//! * `snap` — snapshot cadence in ticks (`0` = log-only recovery; a
//!   snapshot lets serve-style recovery replay just the tail);
//! * `chop` — bytes torn off the log's final record (a mid-`write`
//!   power cut; recovery truncates to the longest valid prefix and
//!   re-executes what was lost).
//!
//! Each trial recovers the crashed directory twice: serve-style
//! (snapshot + tail, state only — the source of `replayed` and `torn`)
//! and load-resume (full log replay, capturing every tick so the
//! driver can finish the run). `match` is the fraction of trials in
//! which the serve-style state digest equals the resume's post-replay
//! digest **and** the finished run's transcript and final digest are
//! byte-identical to an uninterrupted reference. The durability design
//! is correct iff `match` is `1.00` everywhere.
//!
//! Scratch WAL directories live under the system temp dir, keyed by
//! process id and a counter (no wall clock — the table itself stays
//! deterministic).

use super::ExpConfig;
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tmwia_model::generators::planted_community;
use tmwia_service::{
    run_durable, Durability, LoadConfig, RecoverOptions, RecoveryReport, Service, ServiceConfig,
};

/// Planted community diameter (service behaviour does not depend on it,
/// but the instance shape should match the rest of the E-series).
const DIAMETER: usize = 4;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let id = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tmwia-e19-{}-{id}", std::process::id()))
}

/// One trial's measurements.
struct Trial {
    replayed: u64,
    torn: u64,
    matched: bool,
}

/// Open (or recover) a durable service for this trial's instance.
fn open_service(
    n: usize,
    seed: u64,
    dir: &Path,
    snapshot_every: u64,
    opts: RecoverOptions,
) -> Option<(Arc<Service>, RecoveryReport)> {
    let inst = planted_community(n, n, (n / 2).max(2), DIAMETER, seed);
    let durability = Durability {
        dir: dir.to_path_buf(),
        snapshot_every,
    };
    let (svc, report) = Service::recover(
        inst.truth.clone(),
        ServiceConfig {
            seed,
            ..ServiceConfig::default()
        },
        &durability,
        opts,
    )
    .ok()?;
    Some((Arc::new(svc), report))
}

/// Load-resume recovery: capture every replayed tick (forces a full log
/// replay — the driver rebuilds the whole transcript from it).
const RESUME: RecoverOptions = RecoverOptions {
    use_snapshot: true,
    capture: true,
};

/// Serve-style recovery: state only, snapshot plus tail replay.
const STATE_ONLY: RecoverOptions = RecoverOptions {
    use_snapshot: true,
    capture: false,
};

/// Run E19.
pub fn run(cfg: &ExpConfig) -> Table {
    let sizes: &[usize] = cfg.pick(&[64], &[24]);
    let cuts: &[f64] = cfg.pick(&[0.25, 0.5, 0.9], &[0.25, 0.75]);
    let snaps: &[u64] = cfg.pick(&[0, 8, 32], &[0, 4]);
    let chops: &[u64] = cfg.pick(&[0, 5], &[0, 3]);

    let mut table = Table::new(
        "E19: crash recovery (write-ahead tick log)",
        &["n", "cut", "snap", "chop", "replayed", "torn", "match"],
    );
    table.note(
        "match = fraction of trials where snapshot recovery, full-log recovery, and the resumed run's transcript + state digest all agreed byte-for-byte with an uninterrupted run",
    );
    table.note(format!(
        "cut = crashed after this fraction of rounds; snap = snapshot cadence in ticks (0 = log-only); chop = bytes torn off the log tail; replayed/torn are from the serve-style (snapshot + tail) recovery; trials = {}",
        cfg.trials
    ));

    for &n in sizes {
        for &cut in cuts {
            for &snap in snaps {
                for &chop in chops {
                    let cell_seed = cfg.seed
                        ^ ((n as u64) << 24)
                        ^ (((cut * 100.0) as u64) << 16)
                        ^ (snap << 8)
                        ^ chop;
                    let trials = run_trials(cfg.trials, cell_seed, |seed| {
                        run_trial(n, cut, snap, chop, seed)
                    });
                    let replayed = Summary::of_ints(trials.iter().map(|t| t.replayed));
                    let torn = Summary::of_ints(trials.iter().map(|t| t.torn));
                    let matched = trials.iter().filter(|t| t.matched).count() as f64
                        / trials.len().max(1) as f64;
                    table.push(vec![
                        n.to_string(),
                        fnum(cut),
                        snap.to_string(),
                        chop.to_string(),
                        replayed.pm(),
                        fnum(torn.mean),
                        fnum(matched),
                    ]);
                }
            }
        }
    }
    table
}

/// One trial: reference run, crashed-and-torn run, two recoveries
/// (serve-style and load-resume), compare everything.
fn run_trial(n: usize, cut: f64, snapshot_every: u64, chop: u64, seed: u64) -> Trial {
    let failed = Trial {
        replayed: 0,
        torn: 0,
        matched: false,
    };
    let load = LoadConfig {
        sessions: (n / 4).clamp(2, 8),
        requests: 16,
        seed,
        objects: n,
        ..LoadConfig::default()
    };

    // Reference: uninterrupted run on its own fresh log.
    let ref_dir = scratch_dir();
    let Some((ref_svc, ref_report)) = open_service(n, seed, &ref_dir, snapshot_every, RESUME)
    else {
        return failed;
    };
    let Ok(ref_out) = run_durable(&ref_svc, &load, &ref_report) else {
        std::fs::remove_dir_all(&ref_dir).ok();
        return failed;
    };
    let ref_digest = ref_svc.state_digest();
    std::fs::remove_dir_all(&ref_dir).ok();

    // Crash: same config, abandoned after `cut` of the rounds.
    let dir = scratch_dir();
    let Some((svc, report)) = open_service(n, seed, &dir, snapshot_every, RESUME) else {
        return failed;
    };
    let mut crash_cfg = load.clone();
    crash_cfg.halt_after_rounds = Some(((load.requests as f64) * cut).floor() as usize);
    if run_durable(&svc, &crash_cfg, &report).is_err() {
        std::fs::remove_dir_all(&dir).ok();
        return failed;
    }
    drop(svc);

    // Tear the tail: a power cut mid-write chops the final record.
    if chop > 0 {
        let wal_path = dir.join("ticks.wal");
        if let Ok(bytes) = std::fs::read(&wal_path) {
            let keep = bytes.len().saturating_sub(chop as usize);
            if std::fs::write(&wal_path, &bytes[..keep]).is_err() {
                std::fs::remove_dir_all(&dir).ok();
                return failed;
            }
        }
    }

    // Serve-style recovery (snapshot + tail): this is where the `snap`
    // axis shows — `replayed` shrinks to the tail past the snapshot.
    // Recovery is read-only over already-logged ticks, so recovering
    // the same directory again below is safe.
    let Some((state_svc, state_report)) = open_service(n, seed, &dir, snapshot_every, STATE_ONLY)
    else {
        std::fs::remove_dir_all(&dir).ok();
        return failed;
    };
    let replayed = state_report.replayed_ticks;
    let torn = state_report.truncated_bytes;
    let state_digest = state_svc.state_digest();
    drop(state_svc);

    // Load-resume recovery: full log replay, then finish the run. The
    // resumed state must pass THROUGH the serve-style recovered state
    // (digest equality at the crash point) and end byte-identical to
    // the uninterrupted reference.
    let Some((svc, report)) = open_service(n, seed, &dir, snapshot_every, RESUME) else {
        std::fs::remove_dir_all(&dir).ok();
        return failed;
    };
    let state_matched = svc.state_digest() == state_digest;
    let Ok(out) = run_durable(&svc, &load, &report) else {
        std::fs::remove_dir_all(&dir).ok();
        return failed;
    };
    let matched =
        state_matched && out.transcript == ref_out.transcript && svc.state_digest() == ref_digest;
    std::fs::remove_dir_all(&dir).ok();
    Trial {
        replayed,
        torn,
        matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_recovers_byte_identically_everywhere() {
        let t = run(&ExpConfig::quick(1));
        assert_eq!(t.columns.len(), 7);
        assert_eq!(t.rows.len(), 8); // 1 size × 2 cuts × 2 snaps × 2 chops
        for row in &t.rows {
            let matched: f64 = row[6].parse().unwrap();
            assert!(
                (matched - 1.0).abs() < 1e-9,
                "recovery must be byte-identical: {row:?}"
            );
            // With a snapshot cadence, the serve-style tail can
            // legitimately be empty (snapshot sealed at the log's last
            // tick) — but log-only recovery always replays something.
            if row[2] == "0" {
                let replayed: f64 = row[4].split('±').next().unwrap().trim().parse().unwrap();
                assert!(replayed > 0.0, "log-only recovery replays ticks: {row:?}");
            }
        }
    }
}
