//! **E1 — Zero Radius (Theorem 3.1).**
//!
//! Claim: if `≥ αn` players hold identical vectors, w.h.p. all of them
//! output the exact vector after `O(log n / α)` rounds.
//!
//! Workload: planted `D = 0` communities; sweep `n = m` and `α`.
//! Reported: fraction of community members with exact output, community
//! round complexity, and `rounds / (ln n / α)` — the last column should
//! hover around a constant as `n` grows (that *is* the `O(log n / α)`
//! shape), while the solo baseline column grows linearly.

use super::{dense_outputs, ExpConfig};
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_billboard::ProbeEngine;
use tmwia_core::{reconstruct_known, Params};
use tmwia_model::generators::planted_community;

/// One trial's measurements.
struct Trial {
    exact_frac: f64,
    rounds: u64,
}

/// Run E1.
pub fn run(cfg: &ExpConfig) -> Table {
    let sizes: &[usize] = cfg.pick(&[256, 512, 1024, 2048, 4096], &[128, 256]);
    let alphas: &[f64] = cfg.pick(&[1.0, 0.5, 0.25, 0.125], &[0.5]);
    let params = Params::practical();

    let mut table = Table::new(
        "E1: Zero Radius — exact communities (Theorem 3.1)",
        &[
            "n=m",
            "alpha",
            "exact frac",
            "rounds",
            "rounds/(ln n/a)",
            "solo cost",
        ],
    );
    table.note("expect: exact frac ≈ 1, rounds/(ln n/α) ≈ constant as n grows");
    table.note(format!("preset = practical, trials = {}", cfg.trials));

    for &n in sizes {
        for &alpha in alphas {
            let k = ((alpha * n as f64) as usize).max(2);
            let trials = run_trials(cfg.trials, cfg.seed ^ (n as u64) << 8 ^ k as u64, |seed| {
                let inst = planted_community(n, n, k, 0, seed);
                let community = inst.community().to_vec();
                let engine = ProbeEngine::new(inst.truth);
                let players: Vec<usize> = (0..n).collect();
                let rec = reconstruct_known(&engine, &players, alpha, 0, &params, seed);
                let outputs = dense_outputs(&rec.outputs, n, n);
                let exact = community
                    .iter()
                    .filter(|&&p| &outputs[p] == engine.truth().row(p))
                    .count();
                let rounds = community
                    .iter()
                    .map(|&p| engine.probes_of(p))
                    .max()
                    .unwrap_or(0);
                Trial {
                    exact_frac: exact as f64 / community.len() as f64,
                    rounds,
                }
            });
            let exact = Summary::of(&trials.iter().map(|t| t.exact_frac).collect::<Vec<_>>());
            let rounds = Summary::of_ints(trials.iter().map(|t| t.rounds));
            let norm = rounds.mean / ((n as f64).ln() / alpha);
            table.push(vec![
                n.to_string(),
                fnum(alpha),
                fnum(exact.mean),
                rounds.pm(),
                fnum(norm),
                n.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape() {
        let t = run(&ExpConfig::quick(1));
        assert_eq!(t.columns.len(), 6);
        assert_eq!(t.rows.len(), 2); // 2 sizes × 1 alpha
                                     // Exact fraction ≈ 1 in the quick configuration.
        for row in &t.rows {
            let frac: f64 = row[2].parse().unwrap();
            assert!(frac > 0.9, "exact fraction {frac} too low: {row:?}");
            // Rounds beat solo.
            let solo: f64 = row[5].parse().unwrap();
            let rounds: f64 = row[3].split('±').next().unwrap().trim().parse().unwrap();
            assert!(rounds < solo, "no leverage: {row:?}");
        }
    }
}
