//! **E14 — the weaker goal: one good object (reference \[4\], §2).**
//!
//! The paper cites \[4\]: for any set `P` of users sharing a liked
//! object, `O(m + n·log|P|)` probes overall suffice for all of `P` to
//! find *some* liked object. The sample-or-adopt baseline reproduces
//! that shape: rounds-to-completion collapse as the sharing set grows
//! (one lucky explorer serves everyone), while a lone searcher pays
//! `Θ(m / likes)`. This experiment sweeps `|P|` and reports rounds and
//! total probes against the `(m + n·log|P|)/|P|`-ish reference.

use super::ExpConfig;
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_baselines::one_good_object;
use tmwia_billboard::ProbeEngine;
use tmwia_model::matrix::PrefMatrix;
use tmwia_model::rng::{rng_for, tags};
use tmwia_model::BitVec;

/// Run E14.
pub fn run(cfg: &ExpConfig) -> Table {
    let m = if cfg.quick { 1024 } else { 4096 };
    let sizes: &[usize] = cfg.pick(&[1, 4, 16, 64, 256], &[1, 16]);

    let mut table = Table::new(
        "E14: one good object — sharing collapses search cost ([4], §2)",
        &[
            "|P|",
            "m",
            "rounds",
            "total probes",
            "(m + n·log|P|)",
            "found frac",
        ],
    );
    table.note("one shared liked object; expect rounds ≈ m/|P| + log|P| shape");

    for &k in sizes {
        let trials = run_trials(cfg.trials.max(3), cfg.seed ^ (k as u64) << 8, |seed| {
            let mut rng = rng_for(seed, tags::TRIAL, 14);
            // One shared liked object at a random position; everything
            // else disliked, so exploration pays Θ(m) alone.
            let hot = (seed as usize) % m;
            let _ = &mut rng;
            let rows: Vec<BitVec> = (0..k).map(|_| BitVec::from_fn(m, |j| j == hot)).collect();
            let engine = ProbeEngine::new(PrefMatrix::new(rows));
            let players: Vec<usize> = (0..k).collect();
            let res = one_good_object(&engine, &players, (4 * m) as u64, seed);
            (
                res.rounds as f64,
                engine.total_probes() as f64,
                res.found.len() as f64 / k as f64,
            )
        });
        let rounds = Summary::of(&trials.iter().map(|t| t.0).collect::<Vec<_>>());
        let probes = Summary::of(&trials.iter().map(|t| t.1).collect::<Vec<_>>());
        let found = Summary::of(&trials.iter().map(|t| t.2).collect::<Vec<_>>());
        let reference = m as f64 + k as f64 * (k.max(2) as f64).log2();
        table.push(vec![
            k.to_string(),
            m.to_string(),
            rounds.pm(),
            fnum(probes.mean),
            fnum(reference),
            fnum(found.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_finds_and_sharing_helps() {
        let t = run(&ExpConfig::quick(14));
        let parse =
            |cell: &str| -> f64 { cell.split('±').next().unwrap().trim().parse().unwrap() };
        for row in &t.rows {
            let found: f64 = row[5].parse().unwrap();
            assert!(found >= 1.0 - 1e-9, "someone never found: {row:?}");
        }
        // Rounds for |P| = 16 are far below |P| = 1.
        let solo = parse(&t.rows[0][2]);
        let group = parse(&t.rows[1][2]);
        assert!(
            group * 3.0 < solo,
            "sharing did not collapse cost: solo {solo}, group {group}"
        );
        // Total probes stay O(m + n log n)-ish, not n·m.
        let total: f64 = parse(&t.rows[1][3]);
        let reference: f64 = t.rows[1][4].parse().unwrap();
        assert!(total < 8.0 * reference, "total probes {total} ≫ reference");
    }
}
