//! **E6 — Large Radius (Theorem 5.4).**
//!
//! Claim: for any `(α, D)`-typical set, w.h.p. every member's output is
//! within `O(D/α)` of its truth, with per-player probe cost
//! `O(log^{7/2} n / α²)` for `m = O(n)`.
//!
//! Workload: planted communities with `D = Ω(log n)`, sweeping `n = m`
//! and two `D` scales (`≈ 4·ln n` and `n/8`). Reported: discrepancy and
//! its ratio to `D/α` (should sit at a constant), round complexity and
//! its ratio to `ln^{3.5} n` (should not *grow* faster than constant —
//! the polylog shape; the cache caps it at `m` long before the paper's
//! constants are reached).

use super::{dense_outputs, ExpConfig};
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_billboard::ProbeEngine;
use tmwia_core::{large_radius, Params};
use tmwia_model::generators::planted_community;
use tmwia_model::metrics::CommunityReport;

struct Trial {
    disc: f64,
    rounds: u64,
}

/// Run E6.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = Params::practical();
    let alpha = 0.5;
    let sizes: &[usize] = cfg.pick(&[256, 512, 1024], &[128]);

    let mut table = Table::new(
        "E6: Large Radius — error O(D/α), polylog cost (Theorem 5.4)",
        &[
            "n=m",
            "D",
            "disc",
            "D/alpha",
            "disc/(D/a)",
            "rounds",
            "rounds/ln^3.5 n",
            "solo",
        ],
    );
    table.note("expect: disc/(D/α) ≈ constant (the Thm 5.4 error claim).");
    table.note("cost note: at these scales rounds track m/L (the per-group Small Radius");
    table.note("saturates its group); the paper's log^3.5 term dominates only asymptotically");

    for &n in sizes {
        let d_log = (4.0 * (n as f64).ln()).ceil() as usize;
        for d in [d_log, n / 8] {
            let trials = run_trials(cfg.trials, cfg.seed ^ (n as u64) << 12 ^ d as u64, |seed| {
                let k = ((alpha * n as f64) as usize).max(2);
                let inst = planted_community(n, n, k, d, seed);
                let community = inst.community().to_vec();
                let engine = ProbeEngine::new(inst.truth);
                let players: Vec<usize> = (0..n).collect();
                let out = large_radius(&engine, &players, alpha, d, &params, seed);
                let outputs = dense_outputs(&out, n, n);
                let report = CommunityReport::evaluate(engine.truth(), &outputs, &community);
                let rounds = community
                    .iter()
                    .map(|&p| engine.probes_of(p))
                    .max()
                    .unwrap_or(0);
                Trial {
                    disc: report.discrepancy as f64,
                    rounds,
                }
            });
            let disc = Summary::of(&trials.iter().map(|t| t.disc).collect::<Vec<_>>());
            let rounds = Summary::of_ints(trials.iter().map(|t| t.rounds));
            let d_over_a = d as f64 / alpha;
            let polylog = (n as f64).ln().powf(3.5);
            table.push(vec![
                n.to_string(),
                d.to_string(),
                disc.pm(),
                fnum(d_over_a),
                fnum(disc.mean / d_over_a),
                rounds.pm(),
                fnum(rounds.mean / polylog),
                n.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_within_constant_of_d_over_alpha() {
        let t = run(&ExpConfig::quick(6));
        for row in &t.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio <= 6.0, "disc/(D/α) = {ratio} too large: {row:?}");
        }
    }
}
