//! **E8 — the headline (Theorem 1.1).**
//!
//! Claim: for `m = Θ(n)` and any community of linear size, after
//! polylogarithmically many rounds every member's stretch is `O(1)` —
//! even with *unknown* `D` (the §6 wrapper adds a `log m` factor over
//! the known-`D` Theorem 5.4).
//!
//! Workload: planted communities at `α = 1/2`, three diameter regimes
//! (`D = 0`, a small constant `D = 2`, and `D = 2·ln n`), sweeping
//! `n = m`. Reported per row:
//!
//! * rounds of the **known-D** Figure 1 algorithm — the Theorem 5.4
//!   cost; for `D ∈ {0, 2}` this is genuinely sublinear and *flattens*
//!   as `m` grows, which is the polylog-vs-linear crossover shape;
//! * rounds and stretch of the **unknown-D** §6 wrapper — the
//!   Theorem 1.1 headline; at laptop scales its `log m` many versions
//!   drive the per-player cost into the probe-cache cap `m`
//!   (= "never worse than solo"), with the asymptotic crossover lying
//!   beyond simulation scale — an honest constants statement, noted in
//!   `EXPERIMENTS.md`;
//! * the oracle floor, and the kNN strawman's error when granted the
//!   *known-D* budget (sublinear — where kNN collapses).

use super::{dense_outputs, ExpConfig};
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_baselines::{knn_billboard, oracle_community, KnnConfig};
use tmwia_billboard::ProbeEngine;
use tmwia_core::{reconstruct_known, reconstruct_unknown_d, Params};
use tmwia_model::generators::planted_community;
use tmwia_model::metrics::CommunityReport;

struct Trial {
    known_rounds: u64,
    known_disc: f64,
    unk_rounds: u64,
    unk_stretch: f64,
    unk_disc: f64,
    oracle_rounds: u64,
    oracle_disc: f64,
    knn_disc: f64,
}

/// Run E8.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = Params::practical();
    let alpha = 0.5;
    let sizes: &[usize] = cfg.pick(&[256, 512, 1024, 2048], &[128, 256]);

    let mut table = Table::new(
        "E8: headline — constant stretch after polylog rounds (Theorem 1.1)",
        &[
            "n=m",
            "D",
            "rounds knownD",
            "disc knownD",
            "rounds unkD",
            "stretch unkD",
            "solo",
            "oracle rounds",
            "oracle disc",
            "knn disc @knownD budget",
        ],
    );
    table.note("expect: knownD rounds flatten vs m for D∈{0,2} (polylog shape);");
    table.note("unknownD stretch O(1) at every scale; its rounds cache-cap at m (≤ solo);");
    table.note("kNN at the sublinear knownD budget collapses while tmwia is exact/5D-bounded");

    for &n in sizes {
        for d in [0usize, 2, (2.0 * (n as f64).ln()).ceil() as usize] {
            let trials = run_trials(cfg.trials, cfg.seed ^ (n as u64) << 16 ^ d as u64, |seed| {
                let k = n / 2;
                let inst = planted_community(n, n, k, d, seed);
                let community = inst.community().to_vec();
                let players: Vec<usize> = (0..n).collect();

                // Known-D (Theorem 5.4 cost), fresh engine.
                let eng_known = ProbeEngine::new(inst.truth.clone());
                let rec = reconstruct_known(&eng_known, &players, alpha, d, &params, seed);
                let known_outputs = dense_outputs(&rec.outputs, n, n);
                let known_report =
                    CommunityReport::evaluate(eng_known.truth(), &known_outputs, &community);
                let known_rounds = community
                    .iter()
                    .map(|&p| eng_known.probes_of(p))
                    .max()
                    .unwrap_or(0);

                // Unknown-D (Theorem 1.1), fresh engine.
                let eng_unk = ProbeEngine::new(inst.truth.clone());
                let res = reconstruct_unknown_d(&eng_unk, &players, alpha, &params, seed);
                let unk_outputs = dense_outputs(&res.outputs, n, n);
                let unk_report =
                    CommunityReport::evaluate(eng_unk.truth(), &unk_outputs, &community);
                let unk_rounds = community
                    .iter()
                    .map(|&p| eng_unk.probes_of(p))
                    .max()
                    .unwrap_or(0);

                // Oracle floor.
                let eng_oracle = ProbeEngine::new(inst.truth.clone());
                let oracle_out = oracle_community(&eng_oracle, &community, 1, seed);
                let oracle_outputs = dense_outputs(&oracle_out, n, n);
                let oracle_report =
                    CommunityReport::evaluate(eng_oracle.truth(), &oracle_outputs, &community);
                let oracle_rounds = community
                    .iter()
                    .map(|&p| eng_oracle.probes_of(p))
                    .max()
                    .unwrap_or(0);

                // kNN at the known-D budget.
                let eng_knn = ProbeEngine::new(inst.truth.clone());
                let knn_out = knn_billboard(
                    &eng_knn,
                    &players,
                    &KnnConfig {
                        probes_per_player: (known_rounds as usize).clamp(4, n),
                        neighbours: 5,
                        min_overlap: 3,
                    },
                    seed,
                );
                let knn_outputs = dense_outputs(&knn_out, n, n);
                let knn_report =
                    CommunityReport::evaluate(eng_knn.truth(), &knn_outputs, &community);

                Trial {
                    known_rounds,
                    known_disc: known_report.discrepancy as f64,
                    unk_rounds,
                    unk_stretch: if unk_report.stretch.is_finite() {
                        unk_report.stretch
                    } else {
                        unk_report.discrepancy as f64
                    },
                    unk_disc: unk_report.discrepancy as f64,
                    oracle_rounds,
                    oracle_disc: oracle_report.discrepancy as f64,
                    knn_disc: knn_report.discrepancy as f64,
                }
            });
            let known_rounds = Summary::of_ints(trials.iter().map(|t| t.known_rounds));
            let known_disc = Summary::of(&trials.iter().map(|t| t.known_disc).collect::<Vec<_>>());
            let unk_rounds = Summary::of_ints(trials.iter().map(|t| t.unk_rounds));
            let unk_stretch =
                Summary::of(&trials.iter().map(|t| t.unk_stretch).collect::<Vec<_>>());
            let unk_disc = Summary::of(&trials.iter().map(|t| t.unk_disc).collect::<Vec<_>>());
            let oracle_rounds = Summary::of_ints(trials.iter().map(|t| t.oracle_rounds));
            let oracle_disc =
                Summary::of(&trials.iter().map(|t| t.oracle_disc).collect::<Vec<_>>());
            let knn_disc = Summary::of(&trials.iter().map(|t| t.knn_disc).collect::<Vec<_>>());
            table.push(vec![
                n.to_string(),
                d.to_string(),
                known_rounds.pm(),
                fnum(known_disc.mean),
                unk_rounds.pm(),
                if d == 0 {
                    format!("exact(Δ={})", fnum(unk_disc.mean))
                } else {
                    fnum(unk_stretch.mean)
                },
                n.to_string(),
                fnum(oracle_rounds.mean),
                fnum(oracle_disc.mean),
                fnum(knn_disc.mean),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shapes_hold_at_quick_scale() {
        let t = run(&ExpConfig::quick(8));
        let parse =
            |cell: &str| -> f64 { cell.split('±').next().unwrap().trim().parse().unwrap() };
        for row in &t.rows {
            let n: f64 = row[0].parse().unwrap();
            let d: usize = row[1].parse().unwrap();
            // Known-D at D = 0 must be genuinely sublinear.
            if d == 0 {
                let known = parse(&row[2]);
                assert!(known < n / 2.0, "no polylog win at D=0: {row:?}");
            } else {
                // Stretch is a small constant.
                let stretch: f64 = row[5].parse().unwrap();
                assert!(stretch <= 20.0, "stretch not constant-ish: {row:?}");
            }
            // Unknown-D never exceeds solo.
            let unk = parse(&row[4]);
            assert!(unk <= n + 1e-9, "unknown-D exceeded solo: {row:?}");
            // kNN at the known-D budget is worse than tmwia whenever that
            // budget is sublinear.
            let known = parse(&row[2]);
            if known < 0.9 * n {
                let knn = parse(&row[9]);
                let tm = parse(&row[3]);
                assert!(
                    knn > tm,
                    "kNN unexpectedly competitive at sublinear budget: {row:?}"
                );
            }
        }
    }
}
