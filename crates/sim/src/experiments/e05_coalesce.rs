//! **E5 — Coalesce (Theorem 5.3).**
//!
//! Claims: the output has (1) at most `1/α` vectors; (2) a *unique*
//! vector closest to every member of a dense cluster `V_T`, within
//! `d̃ ≤ 2D`; (3) at most `5D/α` `?` entries per output vector.
//!
//! Workload: multisets with one planted dense cluster plus uniform
//! noise, sweeping `α` and `D`. Reported: max output-set size, the
//! uniqueness rate, the max `d̃` from cluster members to their
//! candidate, and the max `?` count vs the bound.

use super::ExpConfig;
use crate::stats::fnum;
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_core::coalesce;
use tmwia_model::generators::at_distance;
use tmwia_model::rng::{rng_for, tags};
use tmwia_model::BitVec;

struct Trial {
    out_size: usize,
    unique: bool,
    max_dtilde: usize,
    max_unknown: usize,
}

/// Run E5.
pub fn run(cfg: &ExpConfig) -> Table {
    let alphas: &[f64] = cfg.pick(&[0.5, 0.25, 0.125], &[0.25]);
    let ds: &[usize] = cfg.pick(&[4, 16], &[4]);
    let m = if cfg.quick { 256 } else { 512 };
    let n = if cfg.quick { 40 } else { 120 };

    let mut table = Table::new(
        "E5: Coalesce — candidate sets (Theorem 5.3)",
        &[
            "alpha",
            "D",
            "|B| max",
            "1/alpha",
            "unique frac",
            "max d~",
            "2D",
            "max ?",
            "5D/alpha",
        ],
    );
    table.note(format!(
        "n = {n} vectors over m = {m}, cluster size = ⌈αn⌉ + 4"
    ));

    for &alpha in alphas {
        for &d in ds {
            let trials = run_trials(
                cfg.trials.max(4),
                cfg.seed ^ (d as u64) ^ ((alpha * 256.0) as u64) << 8,
                |seed| {
                    let mut rng = rng_for(seed, tags::TRIAL, 2);
                    let center = BitVec::random(m, &mut rng);
                    let cluster_size = ((alpha * n as f64).ceil() as usize) + 4;
                    let cluster: Vec<BitVec> = (0..cluster_size)
                        .map(|_| at_distance(&center, d / 2, &mut rng))
                        .collect();
                    let mut vectors = cluster.clone();
                    vectors.extend((0..n - cluster_size).map(|_| BitVec::random(m, &mut rng)));
                    let out = coalesce(&vectors, d, alpha, 5);
                    // Closest candidate per cluster member.
                    let mut chosen = std::collections::BTreeSet::new();
                    let mut max_dtilde = 0usize;
                    for v in &cluster {
                        if let Some((i, dt)) = out
                            .iter()
                            .enumerate()
                            .map(|(i, u)| (i, u.dtilde_bits(v)))
                            .min_by_key(|&(i, dt)| (dt, i))
                        {
                            chosen.insert(i);
                            max_dtilde = max_dtilde.max(dt);
                        }
                    }
                    Trial {
                        out_size: out.len(),
                        unique: chosen.len() == 1,
                        max_dtilde,
                        max_unknown: out.iter().map(|u| u.count_unknown()).max().unwrap_or(0),
                    }
                },
            );
            let out_max = trials.iter().map(|t| t.out_size).max().unwrap_or(0);
            let unique = trials.iter().filter(|t| t.unique).count() as f64 / trials.len() as f64;
            let dt_max = trials.iter().map(|t| t.max_dtilde).max().unwrap_or(0);
            let unk_max = trials.iter().map(|t| t.max_unknown).max().unwrap_or(0);
            table.push(vec![
                fnum(alpha),
                d.to_string(),
                out_max.to_string(),
                fnum(1.0 / alpha),
                fnum(unique),
                dt_max.to_string(),
                (2 * d).to_string(),
                unk_max.to_string(),
                fnum(5.0 * d as f64 / alpha),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_5_3_bounds_hold() {
        let t = run(&ExpConfig::quick(5));
        for row in &t.rows {
            let out_max: f64 = row[2].parse().unwrap();
            let inv_alpha: f64 = row[3].parse().unwrap();
            assert!(out_max <= inv_alpha + 1e-9, "|B| bound violated: {row:?}");
            let unique: f64 = row[4].parse().unwrap();
            assert!(unique >= 0.99, "uniqueness failed: {row:?}");
            let dt: f64 = row[5].parse().unwrap();
            let two_d: f64 = row[6].parse().unwrap();
            assert!(dt <= two_d, "2D bound violated: {row:?}");
            let unk: f64 = row[7].parse().unwrap();
            let unk_bound: f64 = row[8].parse().unwrap();
            assert!(unk <= unk_bound, "? bound violated: {row:?}");
        }
    }
}
