//! **E7 — RSelect (Theorem 6.1).**
//!
//! Claim: with no distance bound given, RSelect outputs a candidate
//! within `O(D)` of the optimum (`D` = distance of the true closest
//! candidate) using `O(|V|²·log n)` probes.
//!
//! Workload: candidate sets at geometrically spaced distances
//! `D, 3D, 9D, …` from the player's truth, sweeping `|V|`. Reported:
//! probes vs the `C(|V|,2)·samples` budget, and the approximation ratio
//! `chosen distance / best distance` (expect a small constant; the 2/3
//! majority makes factor ≲ 3 typical at these separations).

use super::ExpConfig;
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_billboard::ProbeEngine;
use tmwia_core::{rselect_bits, Params};
use tmwia_model::generators::at_distance;
use tmwia_model::matrix::PrefMatrix;
use tmwia_model::rng::{rng_for, tags};
use tmwia_model::BitVec;

/// Run E7.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = Params::theory();
    let ks: &[usize] = cfg.pick(&[2, 4, 8, 16], &[2, 8]);
    let m = if cfg.quick { 1024 } else { 4096 };
    let base_d = 4usize;

    let mut table = Table::new(
        "E7: RSelect — unbounded Choose Closest (Theorem 6.1)",
        &[
            "|V|",
            "probes",
            "budget |V|^2-ish",
            "approx ratio",
            "ratio max",
        ],
    );
    table.note(format!(
        "candidates at distances {base_d}·3^i from the truth, m = {m}, theory preset"
    ));

    for &k in ks {
        let samples = params.rselect_samples(m);
        let budget = k * (k - 1) / 2 * samples;
        let trials = run_trials(cfg.trials.max(5), cfg.seed ^ (k as u64) << 24, |seed| {
            let mut rng = rng_for(seed, tags::TRIAL, 3);
            let truth_row = BitVec::random(m, &mut rng);
            let engine = ProbeEngine::new(PrefMatrix::new(vec![truth_row.clone()]));
            let cands: Vec<BitVec> = (0..k)
                .map(|i| {
                    let d = base_d * 3usize.pow(i as u32 % 8);
                    at_distance(&truth_row, d.min(m / 2), &mut rng)
                })
                .collect();
            let objects: Vec<usize> = (0..m).collect();
            let r = rselect_bits(&engine.player(0), &objects, &cands, &params, m, seed);
            // lint:allow(panic-hygiene) cands holds k >= 1 vectors built just above
            let best = cands.iter().map(|c| c.hamming(&truth_row)).min().unwrap();
            let chosen = cands[r.winner].hamming(&truth_row);
            (r.probes as f64, chosen as f64 / best as f64)
        });
        let probes = Summary::of(&trials.iter().map(|t| t.0).collect::<Vec<_>>());
        let ratio = Summary::of(&trials.iter().map(|t| t.1).collect::<Vec<_>>());
        table.push(vec![
            k.to_string(),
            fnum(probes.mean),
            budget.to_string(),
            fnum(ratio.mean),
            fnum(ratio.max),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_within_budget_and_ratio_constant() {
        let t = run(&ExpConfig::quick(7));
        for row in &t.rows {
            let probes: f64 = row[1].parse().unwrap();
            let budget: f64 = row[2].parse().unwrap();
            assert!(probes <= budget, "budget exceeded: {row:?}");
            let ratio_max: f64 = row[4].parse().unwrap();
            assert!(ratio_max <= 3.0 + 1e-9, "approx ratio too big: {row:?}");
        }
    }
}
