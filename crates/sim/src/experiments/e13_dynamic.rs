//! **E13 — tracking a drifting environment (§1 motivation).**
//!
//! The paper's intro claims the interactive framework covers "tracking
//! \[a\] dynamic environment by unreliable sensors". We quantify that:
//! the world drifts every epoch (community center moves, background
//! churns); a player who keeps a *stale* epoch-0 estimate decays
//! linearly with drift, while re-running the reconstruction each epoch
//! holds the error at the static bound — at a per-epoch cost that the
//! billboard keeps sublinear for community members in the exact-
//! agreement regime.

use super::{dense_outputs, ExpConfig};
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_billboard::ProbeEngine;
use tmwia_core::{reconstruct_known, Params};
use tmwia_model::generators::{DriftConfig, DriftingWorld};
use tmwia_model::metrics::discrepancy;
use tmwia_model::BitVec;

struct EpochRow {
    fresh_disc: f64,
    stale_disc: f64,
    rounds: f64,
}

/// Run E13.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = Params::practical();
    let n = if cfg.quick { 128 } else { 256 };
    let d = 4usize;
    let epochs = if cfg.quick { 3 } else { 6 };
    let drift = 8usize;

    let mut table = Table::new(
        "E13: tracking a drifting world (§1 'dynamic environment' motivation)",
        &[
            "epoch",
            "fresh disc",
            "bound 5D",
            "stale disc",
            "rounds/epoch",
        ],
    );
    table.note(format!(
        "n = m = {n}, community n/2 at D ≤ {d}, center drift {drift}/epoch"
    ));
    table.note("expect: fresh ≤ 5D every epoch; stale grows ~linearly with drift");

    let per_epoch: Vec<Vec<EpochRow>> = run_trials(cfg.trials, cfg.seed, |seed| {
        let mut world = DriftingWorld::new(
            DriftConfig {
                n,
                m: n,
                community_size: n / 2,
                d,
                center_drift: drift,
                noise_churn: 8,
            },
            seed,
        );
        let players: Vec<usize> = (0..n).collect();
        // Epoch-0 estimates, kept stale thereafter.
        let engine0 = ProbeEngine::new(world.truth().clone());
        let rec0 = reconstruct_known(&engine0, &players, 0.5, d, &params, seed);
        let stale = dense_outputs(&rec0.outputs, n, n);

        let mut rows = Vec::with_capacity(epochs);
        for e in 0..epochs {
            if e > 0 {
                world.advance();
            }
            let community = world.community().to_vec();
            let engine = ProbeEngine::new(world.truth().clone());
            let rec =
                reconstruct_known(&engine, &players, 0.5, d, &params, seed ^ (e as u64) << 32);
            let fresh = dense_outputs(&rec.outputs, n, n);
            let rounds = community
                .iter()
                .map(|&p| engine.probes_of(p))
                .max()
                .unwrap_or(0);
            // Stale error against the *current* truth.
            let stale_now: Vec<BitVec> = stale.clone();
            rows.push(EpochRow {
                fresh_disc: discrepancy(world.truth(), &fresh, &community) as f64,
                stale_disc: discrepancy(world.truth(), &stale_now, &community) as f64,
                rounds: rounds as f64,
            });
        }
        rows
    });

    for e in 0..epochs {
        let fresh = Summary::of(
            &per_epoch
                .iter()
                .map(|t| t[e].fresh_disc)
                .collect::<Vec<_>>(),
        );
        let stale = Summary::of(
            &per_epoch
                .iter()
                .map(|t| t[e].stale_disc)
                .collect::<Vec<_>>(),
        );
        let rounds = Summary::of(&per_epoch.iter().map(|t| t[e].rounds).collect::<Vec<_>>());
        table.push(vec![
            e.to_string(),
            fresh.pm(),
            (5 * d).to_string(),
            stale.pm(),
            fnum(rounds.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_holds_stale_decays() {
        let t = run(&ExpConfig::quick(13));
        let parse =
            |cell: &str| -> f64 { cell.split('±').next().unwrap().trim().parse().unwrap() };
        for row in &t.rows {
            let fresh = parse(&row[1]);
            let bound: f64 = row[2].parse().unwrap();
            assert!(fresh <= bound, "fresh broke the bound: {row:?}");
        }
        // Stale error at the last epoch ≫ stale error at epoch 0.
        let first = parse(&t.rows[0][3]);
        let last = parse(&t.rows.last().unwrap()[3]);
        assert!(last > first + 4.0, "stale did not decay: {first} → {last}");
    }
}
