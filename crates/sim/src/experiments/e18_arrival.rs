//! **E18 — Online arrival/churn (serving layer).**
//!
//! The paper's game is offline: all `n` players are present from round
//! one. E18 measures what the serving layer (`tmwia-service`) preserves
//! when the same planted-community population instead **arrives over
//! time and churns**: clients join at a configurable arrival rate,
//! probe sequentially (sharing every grade to the billboard) up to a
//! budget of `m/4` coordinates, and each round may abandon the session
//! with probability `churn`. More clients are scripted than the
//! service has player slots, so the tail exercises the capacity-reject
//! path.
//!
//! Each client predicts its full preference row as *own probed grades
//! where available, billboard majority otherwise* — the serving-layer
//! analogue of the paper's "let the community fill in the rest".
//! Reported per `(arrival rate, churn)` cell:
//!
//! * `joined` — sessions admitted (capacity-bounded);
//! * `done` — clients that completed their probe budget;
//! * `probes` — mean paid probes per completed client (the Leave
//!   receipt's ledger, ≈ the budget);
//! * `disc` — the worst completed community member's Hamming distance
//!   between its prediction and its true row (the discrepancy the
//!   billboard majority leaves behind at `m/4` coverage);
//! * `rej` — `Busy` backpressure responses observed.
//!
//! Everything is driven through [`InProcTransport`] with explicit
//! ticks, so the whole table is byte-identical under any rayon pool —
//! pinned by the golden file and `tests/service_determinism.rs`.

use super::ExpConfig;
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use std::sync::Arc;
use tmwia_model::generators::planted_community;
use tmwia_model::rng::{derive, tags};
use tmwia_service::{
    ErrorCode, InProcTransport, Request, Response, Service, ServiceConfig, Transport as _,
};

/// Planted community diameter.
const DIAMETER: usize = 4;

/// A scripted client's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Not yet due to arrive.
    Waiting,
    /// Join submitted, response pending.
    Joining,
    /// Session open, probing.
    Active,
    /// Leave submitted after finishing the budget.
    Finishing,
    /// Leave submitted after a churn draw.
    Churning,
    /// Final states.
    Done,
    Churned,
    Rejected,
}

struct Client {
    transport: InProcTransport,
    phase: Phase,
    session: u64,
    player: Option<usize>,
    offset: u64,
    probes_done: u64,
    in_flight: bool,
    grades: Vec<Option<bool>>,
    paid: u64,
}

/// One trial's measurements.
struct Trial {
    joined: u64,
    done: u64,
    probes_mean: f64,
    disc: u64,
    rejected: u64,
}

/// Run E18.
pub fn run(cfg: &ExpConfig) -> Table {
    let sizes: &[usize] = cfg.pick(&[256], &[96]);
    let arrivals: &[usize] = cfg.pick(&[8, 32, 128], &[8, 32]);
    let churns: &[f64] = cfg.pick(&[0.0, 0.02, 0.1], &[0.0, 0.05]);

    let mut table = Table::new(
        "E18: online arrival/churn (serving layer)",
        &[
            "n", "arrive", "churn", "joined", "done", "probes", "disc", "rej",
        ],
    );
    table.note(
        "disc = worst completed community member's Hamming error; prediction = own probes + board majority",
    );
    table.note(format!(
        "D = {DIAMETER}, budget = m/4, clients = n + n/8 (tail exercises capacity rejects), trials = {}",
        cfg.trials
    ));

    for &n in sizes {
        for &arrive in arrivals {
            for &churn in churns {
                let cell_seed = cfg.seed
                    ^ ((n as u64) << 16)
                    ^ ((arrive as u64) << 8)
                    ^ ((churn * 1000.0) as u64);
                let trials = run_trials(cfg.trials, cell_seed, |seed| {
                    run_trial(n, arrive, churn, seed)
                });
                let joined = Summary::of_ints(trials.iter().map(|t| t.joined));
                let done = Summary::of_ints(trials.iter().map(|t| t.done));
                let probes = Summary::of(&trials.iter().map(|t| t.probes_mean).collect::<Vec<_>>());
                let disc = Summary::of_ints(trials.iter().map(|t| t.disc));
                let rej = Summary::of_ints(trials.iter().map(|t| t.rejected));
                table.push(vec![
                    n.to_string(),
                    arrive.to_string(),
                    fnum(churn),
                    fnum(joined.mean),
                    fnum(done.mean),
                    probes.pm(),
                    disc.pm(),
                    fnum(rej.mean),
                ]);
            }
        }
    }
    table
}

/// One trial: script `n + n/8` clients through the serving layer.
fn run_trial(n: usize, arrive: usize, churn: f64, seed: u64) -> Trial {
    let m = n;
    let budget = (m / 4).max(1) as u64;
    let clients_total = n + n / 8;
    let inst = planted_community(n, m, (n / 2).max(2), DIAMETER, seed);
    let Ok(svc) = Service::new(
        inst.truth.clone(),
        ServiceConfig {
            batch_size: clients_total.max(1),
            queue_capacity: 2 * n,
            seed,
            ..ServiceConfig::default()
        },
    ) else {
        // Unreachable for n ≥ 1; a zero trial keeps the harness total.
        return Trial {
            joined: 0,
            done: 0,
            probes_mean: 0.0,
            disc: 0,
            rejected: 0,
        };
    };
    let svc = Arc::new(svc);
    let churn_scaled = (churn * 1_000_000.0) as u64;

    let mut clients: Vec<Client> = (0..clients_total)
        .map(|c| Client {
            transport: InProcTransport::connect(&svc),
            phase: Phase::Waiting,
            session: 0,
            player: None,
            offset: derive(seed, tags::SERVICE_LOAD, c as u64) % m as u64,
            probes_done: 0,
            in_flight: false,
            grades: vec![None; m],
            paid: 0,
        })
        .collect();

    let mut rejected_busy = 0u64;
    let tick_cap = (clients_total as u64) * budget * 4 + 256;
    for round in 0..tick_cap {
        // Submit phase: each client at most one request in flight.
        let mut any_open = false;
        for (c, cl) in clients.iter_mut().enumerate() {
            match cl.phase {
                Phase::Done | Phase::Churned | Phase::Rejected => continue,
                _ => any_open = true,
            }
            if cl.in_flight {
                continue;
            }
            match cl.phase {
                Phase::Waiting if round >= (c / arrive.max(1)) as u64 => {
                    let _ = cl.transport.send(c as u64, &Request::Join);
                    cl.phase = Phase::Joining;
                    cl.in_flight = true;
                }
                Phase::Active => {
                    let draw = derive(seed, tags::SERVICE_CHURN, ((c as u64) << 20) | round);
                    if draw % 1_000_000 < churn_scaled {
                        let _ = cl.transport.send(
                            c as u64,
                            &Request::Leave {
                                session: cl.session,
                            },
                        );
                        cl.phase = Phase::Churning;
                        cl.in_flight = true;
                    } else if cl.probes_done >= budget {
                        let _ = cl.transport.send(
                            c as u64,
                            &Request::Leave {
                                session: cl.session,
                            },
                        );
                        cl.phase = Phase::Finishing;
                        cl.in_flight = true;
                    } else {
                        let object = ((cl.offset + cl.probes_done) % m as u64) as u32;
                        let _ = cl.transport.send(
                            c as u64,
                            &Request::Probe {
                                session: cl.session,
                                object,
                                share: true,
                            },
                        );
                        cl.in_flight = true;
                    }
                }
                _ => {}
            }
        }
        if !any_open {
            break;
        }
        svc.tick();
        // Drain phase.
        for cl in &mut clients {
            while let Some((_, resp)) = cl.transport.try_recv() {
                cl.in_flight = false;
                match resp {
                    Response::Joined { session, player } => {
                        cl.session = session;
                        cl.player = Some(player as usize);
                        cl.phase = Phase::Active;
                    }
                    Response::Error {
                        code: ErrorCode::Capacity,
                        ..
                    } => cl.phase = Phase::Rejected,
                    Response::Grade { object, value, .. } => {
                        if let Some(slot) = cl.grades.get_mut(object as usize) {
                            *slot = Some(value);
                        }
                        cl.probes_done += 1;
                    }
                    Response::Left { probes, .. } => {
                        cl.paid = probes;
                        cl.phase = match cl.phase {
                            Phase::Churning => Phase::Churned,
                            _ => Phase::Done,
                        };
                    }
                    Response::Busy { .. } => rejected_busy += 1,
                    _ => {}
                }
            }
        }
    }

    // Predictions: own probed grades, billboard majority elsewhere.
    let snap = svc.snapshot();
    let community = inst.community();
    let mut disc = 0u64;
    for cl in &clients {
        if cl.phase != Phase::Done {
            continue;
        }
        let Some(p) = cl.player else { continue };
        if !community.contains(&p) {
            continue;
        }
        let errs = (0..m)
            .filter(|&j| {
                let pred = cl.grades[j].unwrap_or_else(|| snap.majority(j as u32).unwrap_or(false));
                pred != inst.truth.value(p, j)
            })
            .count() as u64;
        disc = disc.max(errs);
    }

    let done: Vec<&Client> = clients.iter().filter(|c| c.phase == Phase::Done).collect();
    let probes_mean = if done.is_empty() {
        0.0
    } else {
        done.iter().map(|c| c.paid as f64).sum::<f64>() / done.len() as f64
    };
    Trial {
        joined: clients.iter().filter(|c| c.player.is_some()).count() as u64,
        done: done.len() as u64,
        probes_mean,
        disc,
        rejected: rejected_busy
            + clients
                .iter()
                .filter(|c| c.phase == Phase::Rejected)
                .count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape() {
        let t = run(&ExpConfig::quick(1));
        assert_eq!(t.columns.len(), 8);
        assert_eq!(t.rows.len(), 4); // 1 size × 2 arrivals × 2 churns
        for row in &t.rows {
            let churn: f64 = row[2].parse().unwrap();
            let joined: f64 = row[3].parse().unwrap();
            let done: f64 = row[4].parse().unwrap();
            let probes: f64 = row[5].split('±').next().unwrap().trim().parse().unwrap();
            let disc: f64 = row[6].split('±').next().unwrap().trim().parse().unwrap();
            assert!(joined <= 96.0, "slots bound admission: {row:?}");
            assert!(done <= joined, "{row:?}");
            if churn == 0.0 {
                assert_eq!(done, joined, "no churn ⇒ everyone finishes: {row:?}");
                assert!((probes - 24.0).abs() < 1e-9, "budget m/4 = 24: {row:?}");
            }
            assert!(disc <= 96.0, "disc bounded by m: {row:?}");
        }
    }
}
