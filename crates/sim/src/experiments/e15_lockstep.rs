//! **E15 — lockstep fidelity and barrier overhead (paper abstract:
//! "distributed randomized peer-to-peer algorithm").**
//!
//! The orchestrated simulation and the literal per-player lockstep
//! execution of Zero Radius are the same algorithm (bit-identical
//! outputs and probe charges under a shared seed — asserted here, not
//! just in unit tests). The one quantity only the lockstep run can
//! measure is **wall-clock rounds**: probes *plus* the barrier rounds a
//! player idles waiting for the sibling half to finish. This experiment
//! sweeps `n = m` and reports probes, wall-clock rounds and their ratio
//! — the paper's synchronous-rounds model is meaningful precisely
//! because this ratio stays a small constant (balanced random halvings
//! keep subtree completion times aligned).

use super::{dense_outputs, ExpConfig};
use crate::stats::{fnum, Summary};
use crate::table::Table;
use crate::trials::run_trials;
use tmwia_billboard::ProbeEngine;
use tmwia_core::{lockstep_zero_radius, zero_radius, BinarySpace, Params};
use tmwia_model::generators::planted_community;
use tmwia_model::BitVec;

struct Trial {
    probes: u64,
    wall_rounds: u64,
    identical: bool,
    exact_frac: f64,
}

/// Run E15.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = Params::practical();
    let alpha = 0.5;
    let sizes: &[usize] = cfg.pick(&[256, 512, 1024, 2048], &[128, 256]);

    let mut table = Table::new(
        "E15: lockstep P2P execution — fidelity and barrier overhead",
        &[
            "n=m",
            "max probes",
            "wall rounds",
            "rounds/probes",
            "identical to sim",
            "exact frac",
        ],
    );
    table.note("expect: identical = 1 (bit-for-bit); rounds/probes a small constant");

    for &n in sizes {
        let trials = run_trials(cfg.trials, cfg.seed ^ (n as u64) << 4, |seed| {
            let inst = planted_community(n, n, n / 2, 0, seed);
            let players: Vec<usize> = (0..n).collect();
            let objects: Vec<usize> = (0..n).collect();

            let eng_sim = ProbeEngine::new(inst.truth.clone());
            let orch = zero_radius(
                &BinarySpace::new(&eng_sim),
                &players,
                &objects,
                alpha,
                &params,
                n,
                seed,
            );
            let eng_lock = ProbeEngine::new(inst.truth.clone());
            let lock = lockstep_zero_radius(&eng_lock, &players, &objects, alpha, &params, n, seed);

            let identical = players.iter().all(|&p| orch[&p] == lock.outputs[&p])
                && (0..n).all(|p| eng_sim.probes_of(p) == eng_lock.probes_of(p));
            let community = inst.community().to_vec();
            let probes = community
                .iter()
                .map(|&p| eng_lock.probes_of(p))
                .max()
                .unwrap_or(0);
            let dense = dense_outputs(
                &lock
                    .outputs
                    .iter()
                    .map(|(&p, vals)| (p, BitVec::from_bools(vals)))
                    .collect(),
                n,
                n,
            );
            let exact = community
                .iter()
                .filter(|&&p| &dense[p] == inst.truth.row(p))
                .count() as f64
                / community.len() as f64;
            Trial {
                probes,
                wall_rounds: lock.rounds,
                identical,
                exact_frac: exact,
            }
        });
        let probes = Summary::of_ints(trials.iter().map(|t| t.probes));
        let rounds = Summary::of_ints(trials.iter().map(|t| t.wall_rounds));
        let identical = trials.iter().filter(|t| t.identical).count() as f64 / trials.len() as f64;
        let exact = Summary::of(&trials.iter().map(|t| t.exact_frac).collect::<Vec<_>>());
        table.push(vec![
            n.to_string(),
            probes.pm(),
            rounds.pm(),
            fnum(rounds.mean / probes.mean.max(1.0)),
            fnum(identical),
            fnum(exact.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_holds_and_overhead_is_constant() {
        let t = run(&ExpConfig::quick(15));
        for row in &t.rows {
            let identical: f64 = row[4].parse().unwrap();
            assert_eq!(identical, 1.0, "lockstep diverged from sim: {row:?}");
            let ratio: f64 = row[3].parse().unwrap();
            assert!(ratio < 8.0, "barrier overhead blew up: {row:?}");
            let exact: f64 = row[5].parse().unwrap();
            assert!(exact > 0.9, "quality regression: {row:?}");
        }
    }
}
