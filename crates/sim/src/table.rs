//! Plain-text and CSV tables for experiment output.
//!
//! Every experiment returns a [`Table`]; the bench binaries print the
//! aligned text form (what `EXPERIMENTS.md` records) and can dump CSV
//! for downstream plotting.

use std::fmt::Write as _;

/// A titled table of string cells.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Experiment id + caption, e.g. `"E1: Zero Radius (Theorem 3.1)"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must match `columns.len()`.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes rendered under the table (parameters, preset,
    /// expectations from the paper).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Column-aligned text rendering (markdown-flavoured).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let pad = w - cell.chars().count();
                let _ = write!(line, " {}{} |", cell, " ".repeat(pad));
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "> {n}");
        }
        out
    }

    /// CSV rendering (RFC-4180-ish: cells containing commas or quotes
    /// are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0: demo", &["n", "rounds"]);
        t.push(vec!["256".into(), "31".into()]);
        t.push(vec!["512".into(), "35".into()]);
        t.note("preset = practical");
        t
    }

    #[test]
    fn render_is_aligned_markdown() {
        let r = sample().render();
        assert!(r.starts_with("## E0: demo"));
        assert!(r.contains("| n   | rounds |"));
        assert!(r.contains("| 256 | 31     |"));
        assert!(r.contains("> preset = practical"));
    }

    #[test]
    fn csv_round_trips_simple_cells() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("n,rounds"));
        assert_eq!(lines.next(), Some("256,31"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a"]);
        t.push(vec!["he said \"hi\", twice".into()]);
        assert!(t.to_csv().contains("\"he said \"\"hi\"\", twice\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new("x", &["a", "b"]).push(vec!["1".into()]);
    }
}
