//! Summary statistics for experiment tables.

/// Five-number-ish summary of a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of finite samples the statistics are computed over.
    pub count: usize,
    /// Number of NaN samples excluded from the statistics.
    pub nan: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for `n < 2`).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Empty samples yield the zero summary.
    ///
    /// NaN samples are excluded and counted in `nan` instead of being
    /// averaged: folding them in would poison `mean`/`std` while the
    /// `f64::min`/`f64::max` folds silently drop them, yielding an
    /// internally inconsistent summary. All-NaN input reduces to the
    /// zero summary (with `nan` recording the discard).
    pub fn of(samples: &[f64]) -> Self {
        let finite: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        let nan = samples.len() - finite.len();
        let count = finite.len();
        if count == 0 {
            return Summary {
                count: 0,
                nan,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = finite.iter().sum::<f64>() / count as f64;
        let var = if count < 2 {
            0.0
        } else {
            finite.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        };
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            nan,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarize integer samples.
    pub fn of_ints<I: IntoIterator<Item = u64>>(samples: I) -> Self {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }

    /// `"mean ± std"` with sensible precision for table cells.
    pub fn pm(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.std)
    }
}

// The latency histogram moved to the shared observability crate; the
// re-export keeps `tmwia_sim::stats::LatencyHistogram` (and the crate
// root re-export) source-compatible for existing users.
pub use tmwia_obs::LatencyHistogram;

/// Format a float compactly for a table cell.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if (x.fract() == 0.0 && x.abs() < 1e9) || x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn of_ints_converts() {
        let s = Summary::of_ints([2u64, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn nan_samples_are_excluded_and_counted() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.nan, 1);
        assert!((s.mean - 2.0).abs() < 1e-12, "mean poisoned: {}", s.mean);
        assert!(s.std.is_finite());
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // Internally consistent: the mean lies between min and max.
        assert!(s.min <= s.mean && s.mean <= s.max);
        // All-NaN reduces to the zero summary, with the discard visible.
        let all = Summary::of(&[f64::NAN, f64::NAN]);
        assert_eq!(all.count, 0);
        assert_eq!(all.nan, 2);
        assert_eq!(all.mean, 0.0);
        // Clean samples report nan = 0 — the fast path is unchanged.
        assert_eq!(Summary::of(&[1.0, 2.0]).nan, 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(3.77159), "3.77");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(12345.6), "12346");
        assert!(Summary::of(&[1.0, 3.0]).pm().contains("±"));
    }
}
