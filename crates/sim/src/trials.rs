//! Deterministic parallel trial execution.
//!
//! Experiments repeat each configuration over several seeds and report
//! summary statistics. Trials are independent, so they run under rayon;
//! each trial's seed is derived from `(base_seed, trial index)` so the
//! result set is identical however the scheduler interleaves them.

use rayon::prelude::*;
use tmwia_model::rng::{derive, tags};

/// Run `count` independent trials of `f`, passing each a derived seed,
/// and collect results in trial order.
pub fn run_trials<T, F>(count: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    (0..count)
        .into_par_iter()
        .map(|i| f(derive(base_seed, tags::TRIAL, i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_are_ordered_and_seeded_distinctly() {
        let out = run_trials(16, 7, |seed| seed);
        assert_eq!(out.len(), 16);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "seeds must be distinct");
        // Determinism.
        assert_eq!(out, run_trials(16, 7, |seed| seed));
        // Different base → different seeds.
        assert_ne!(out, run_trials(16, 8, |seed| seed));
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(run_trials(0, 1, |s| s).is_empty());
    }
}
