//! # tmwia-sim
//!
//! Experiment harness for the reproduction: deterministic trial
//! sweeps ([`trials`]), summary statistics ([`stats`]), plain-text /
//! CSV tables ([`table`]), and the E1–E17 experiment suite
//! ([`experiments`]) that regenerates every quantitative claim of the
//! paper (the paper is a theory extended abstract — each theorem/lemma
//! becomes one experiment; see `DESIGN.md` §5 for the index).
//!
//! Every experiment is a pure function `ExpConfig → Table`, so the same
//! code backs the `tmwia-bench` binaries (full scale), the integration
//! tests (quick scale) and any downstream notebook-style use.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod stats;
pub mod table;
pub mod trials;

pub use experiments::ExpConfig;
pub use stats::{LatencyHistogram, Summary};
pub use table::Table;
pub use trials::run_trials;
