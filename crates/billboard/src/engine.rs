//! Deterministic parallel execution of per-player work.
//!
//! The model's rounds are embarrassingly parallel: "in each round, each
//! player reads the billboard, probes one object, and writes the
//! result". The simulation exploits this with rayon data-parallelism.
//! Two rules keep parallel runs bit-identical to sequential ones:
//!
//! 1. results are collected **in player order** (parallel `map`, not an
//!    unordered reduce), and
//! 2. any randomness a player needs is derived from
//!    `(master seed, phase tag, player id)` via
//!    [`tmwia_model::rng::derive`], never from a shared RNG.

use crate::probe::ProbeEngine;
use rayon::prelude::*;
use tmwia_model::matrix::PlayerId;

pub use crate::fault::LivenessEpoch;

/// Threshold below which parallel dispatch costs more than it saves.
const PAR_THRESHOLD: usize = 8;

/// Apply `f` to every player in `players`, in parallel, returning the
/// results in input order. `f` must be deterministic given its argument
/// (see module docs).
pub fn par_map_players<T, F>(players: &[PlayerId], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(PlayerId) -> T + Sync,
{
    if players.len() < PAR_THRESHOLD {
        players.iter().map(|&p| f(p)).collect()
    } else {
        players.par_iter().map(|&p| f(p)).collect()
    }
}

/// Apply `f` to every index in `0..count` in parallel, preserving order.
/// Convenience for per-part loops (Small Radius runs one Zero Radius per
/// object part; parts are independent).
pub fn par_map_range<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    if count < PAR_THRESHOLD {
        (0..count).map(&f).collect()
    } else {
        (0..count).into_par_iter().map(f).collect()
    }
}

/// Like [`par_map_range`], but the iterations form *bulk-synchronous
/// phases* when the engine carries a fault plan: they run one at a
/// time, in index order, each starting only after the previous one's
/// probes have all landed.
///
/// Use this for fan-outs whose iterations probe **overlapping player
/// sets** (Small Radius runs one Zero Radius per object part with *all*
/// players in every part; Large Radius assigns players to several
/// groups). Under a fault plan, a player's crash/budget deadness is
/// defined on its cumulative paid-probe count, so *which object* gets
/// a crashing player's last paid probe depends on how its probes from
/// concurrent iterations interleave — phasing the outer loop removes
/// that dependence while keeping the full per-player parallelism
/// *inside* each iteration (disjoint players there, so each player's
/// own probe sequence is schedule-independent). Each iteration boundary
/// is a barrier at which [`ProbeEngine::begin_round`] epochs may be
/// captured.
///
/// Fault-free engines take the fully parallel path unchanged: with no
/// plan there is no deadness, and memoized probe values are
/// order-independent.
pub fn par_map_phased<T, F>(engine: &ProbeEngine, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    if engine.fault_state().is_some() {
        (0..count).map(&f).collect()
    } else {
        par_map_range(count, f)
    }
}

/// The subset of `players` the engine considers live at call time, in
/// input order. With no fault plan installed this is all of them (a
/// cheap copy); algorithms use it to exclude crashed/throttled players
/// from voting steps so garbage cannot outvote survivors.
///
/// This captures a [`ProbeEngine::begin_round`] epoch at the call —
/// call it at a phase barrier where `players` are quiescent (see
/// [`LivenessEpoch`]); keep the epoch itself if you need more than one
/// consistent read.
pub fn live_players(engine: &ProbeEngine, players: &[PlayerId]) -> Vec<PlayerId> {
    engine.begin_round().live_players(players)
}

/// Run `f` on the deterministic single-worker schedule (a
/// `num_threads(1)` pool install).
///
/// This is a **test oracle**, not a production path: the epoch-snapshot
/// schedule (phased outer fan-outs via [`par_map_phased`], cross-player
/// liveness frozen per round via [`ProbeEngine::begin_round`]) makes
/// fault-injected parallel runs byte-identical to this single-worker
/// execution, and `tests/fault_determinism.rs` pins that equivalence by
/// running every fault regime both ways. Nothing outside tests should
/// need to pin the schedule anymore.
pub fn run_sequential<R>(f: impl FnOnce() -> R) -> R {
    match rayon::ThreadPoolBuilder::new().num_threads(1).build() {
        Ok(pool) => pool.install(f),
        // Pool construction cannot fail in practice; run unpinned
        // rather than abort the experiment.
        Err(_) => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order_small_and_large() {
        for n in [0usize, 1, 5, 100, 1000] {
            let players: Vec<PlayerId> = (0..n).collect();
            let out = par_map_players(&players, |p| p * 2);
            assert_eq!(out, (0..n).map(|p| p * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_visits_each_exactly_once() {
        let hits = AtomicUsize::new(0);
        let players: Vec<PlayerId> = (0..500).collect();
        let out = par_map_players(&players, |p| {
            hits.fetch_add(1, Ordering::Relaxed);
            p
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn par_map_range_matches_sequential() {
        let out = par_map_range(257, |i| i * i);
        assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential_for_pure_functions() {
        let players: Vec<PlayerId> = (0..2000).collect();
        let f = |p: PlayerId| tmwia_model::rng::derive(42, 1, p as u64);
        let par = par_map_players(&players, f);
        let seq: Vec<u64> = players.iter().map(|&p| f(p)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn live_players_filters_only_under_faults() {
        use crate::fault::FaultPlan;
        use tmwia_model::matrix::PrefMatrix;
        use tmwia_model::BitVec;
        let truth = PrefMatrix::new(vec![BitVec::zeros(4); 8]);
        let players: Vec<PlayerId> = (0..8).collect();
        let clean = ProbeEngine::new(truth.clone());
        assert_eq!(live_players(&clean, &players), players);
        // Crash at round 0 = dead from the start.
        let plan = FaultPlan {
            crash_fraction: 0.25,
            crash_round: 0,
            ..FaultPlan::none()
        };
        let faulty = ProbeEngine::with_faults(truth, plan);
        let live = live_players(&faulty, &players);
        assert_eq!(live.len(), 6);
        assert!(live.iter().all(|&p| !faulty.crashed_players().contains(&p)));
    }
}
