//! Round-accurate lockstep runtime — the paper's execution model taken
//! literally.
//!
//! "The algorithm proceeds in parallel rounds: in each round, each
//! player reads the shared billboard, probes one object, and writes the
//! result on the billboard." (§1.1)
//!
//! The orchestrated algorithms in `tmwia-core` simulate this model
//! bulk-synchronously (equivalent information flow, round complexity =
//! max per-player probes). This module provides the *literal* runtime
//! for policies that are natural to express one probe at a time —
//! online baselines, interactive demos, and cross-checks that the
//! bulk-synchronous cost accounting matches a true lockstep execution:
//!
//! * a [`RoundPolicy`] decides one probe per round from the public
//!   [`RoundBoard`] **as of the round's start** (no same-round leakage);
//! * the [`run_rounds`] driver executes all players in lockstep, posts
//!   results between rounds, and stops when every policy idles or the
//!   round budget is exhausted.

use crate::probe::ProbeEngine;
use tmwia_model::matrix::{ObjectId, PlayerId};
use tmwia_model::BitVec;

/// The public record of all posted probe results, organized for the
/// two read patterns policies need: per-object vote counts and a flat
/// chronological log.
#[derive(Debug, Default)]
pub struct RoundBoard {
    /// `(round, player, object, value)` in posting order.
    log: Vec<(u64, PlayerId, ObjectId, bool)>,
    /// Per-object `(ones, zeros)` tallies. `u64`: the ROADMAP targets
    /// millions of players over long horizons, where a per-object tally
    /// can exceed `u32::MAX` posts.
    votes: Vec<(u64, u64)>,
}

impl RoundBoard {
    fn new(m: usize) -> Self {
        RoundBoard {
            log: Vec::new(),
            votes: vec![(0, 0); m],
        }
    }

    fn post(&mut self, round: u64, p: PlayerId, j: ObjectId, value: bool) {
        self.log.push((round, p, j, value));
        if value {
            self.votes[j].0 += 1;
        } else {
            self.votes[j].1 += 1;
        }
    }

    /// Chronological log of all posts.
    pub fn log(&self) -> &[(u64, PlayerId, ObjectId, bool)] {
        &self.log
    }

    /// `(likes, dislikes)` posted for object `j`.
    pub fn votes(&self, j: ObjectId) -> (u64, u64) {
        self.votes[j]
    }

    /// Majority grade for object `j` (ties and no-data → `None`).
    pub fn majority(&self, j: ObjectId) -> Option<bool> {
        let (ones, zeros) = self.votes[j];
        match ones.cmp(&zeros) {
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => None,
        }
    }
}

/// A per-player online strategy: one probe per round.
pub trait RoundPolicy {
    /// Pick the object to probe this round, reading the board as of the
    /// round's start. `None` = done (idle from now on; the driver may
    /// still run other players).
    fn choose(&mut self, round: u64, board: &RoundBoard) -> Option<ObjectId>;

    /// Receive the result of this round's own probe.
    fn observe(&mut self, round: u64, j: ObjectId, value: bool);

    /// The player's current estimate of its full preference vector,
    /// given the board (free to read).
    fn estimate(&self, board: &RoundBoard) -> BitVec;
}

/// Outcome of a lockstep execution.
#[derive(Debug)]
pub struct RoundsResult {
    /// Rounds actually executed (≤ the budget).
    pub rounds: u64,
    /// Final per-player estimates, in the order of the `policies` input.
    pub estimates: Vec<BitVec>,
    /// The final board.
    pub board: RoundBoard,
}

/// Drive `policies` (one per entry of `players`) in lockstep for at
/// most `max_rounds` rounds. Within a round every player chooses from
/// the same board snapshot; probes are charged through `engine`; posts
/// land on the board *after* the round, exactly as in §1.1.
///
/// **Fault behavior** (driven by the engine's
/// [`crate::fault::FaultPlan`], so the signature is fault-agnostic):
///
/// * *Liveness* — each round starts by freezing a
///   [`crate::fault::LivenessEpoch`] via [`ProbeEngine::begin_round`],
///   and every cross-player deadness check in the round resolves
///   against that snapshot; a player the epoch marks dead (crashed or
///   out of budget) is masked to an idle choice, so the driver
///   terminates as soon as the live players idle instead of spinning to
///   `max_rounds`. A probe denied at probe time (the player's own
///   counter crossed its limit) is simply not observed or posted.
/// * *Round accounting* — a round counts toward `rounds` only when at
///   least one probe is **paid**: memoized re-probes are free and
///   denials charge nothing, so an all-free round must not inflate the
///   `rounds == max per-player probes` invariant.
/// * *Staleness* — with `stale_lag = L > 1`, the posts of round `t`
///   reach the public board only at round `t + L` (with `L ≤ 1` they
///   appear at round `t + 1`, the fault-free synchronous semantics).
///   Rounds in which every live player idles while lagged posts are
///   still in flight do not count toward `rounds` (nobody probes), so
///   the driver's `rounds == max per-player probes` invariant survives
///   fault injection.
///
/// # Panics
/// Panics if `players` and `policies` lengths differ.
pub fn run_rounds(
    engine: &ProbeEngine,
    players: &[PlayerId],
    policies: &mut [Box<dyn RoundPolicy>],
    max_rounds: u64,
) -> RoundsResult {
    assert_eq!(
        players.len(),
        policies.len(),
        "one policy per player required"
    );
    // Effective publication delay: the fault-free model publishes at
    // round t and readers see it at round t+1, which equals lag ≤ 1.
    let delay = engine.stale_lag().max(1);
    // Batches awaiting publication: (post round, that round's posts).
    type PendingBatch = (u64, Vec<(PlayerId, ObjectId, bool)>);
    let mut pending: std::collections::VecDeque<PendingBatch> = std::collections::VecDeque::new();
    let mut board = RoundBoard::new(engine.m());
    let mut rounds = 0u64;
    for round in 0..max_rounds {
        // Phase 0: lagged batches whose delay has elapsed become public,
        // in round order (FIFO keeps the log chronological regardless of
        // which players survived the rounds in between).
        while pending.front().is_some_and(|&(t, _)| t + delay <= round) {
            if let Some((t, batch)) = pending.pop_front() {
                for (p, j, value) in batch {
                    board.post(t, p, j, value);
                }
            }
        }
        // Phase 1: everyone live chooses against the round-start board;
        // dead players idle (their choices must not burn rounds).
        // Liveness is frozen at the round boundary so the mask is
        // independent of how Phase 2's probes would interleave.
        let epoch = engine.begin_round();
        let choices: Vec<Option<ObjectId>> = players
            .iter()
            .zip(policies.iter_mut())
            .map(|(&p, pol)| {
                if epoch.is_dead(p) {
                    None
                } else {
                    pol.choose(round, &board)
                }
            })
            .collect();
        if choices.iter().all(Option::is_none) {
            if pending.is_empty() {
                break;
            }
            // Lagged posts are still in flight; let them land (a policy
            // may wake up once it sees them). No probes ⇒ no round.
            continue;
        }
        // Phase 2: probe and observe; collect posts. A denial (the
        // player died since its last paid probe) yields nothing.
        let paid_before = engine.total_probes();
        let mut posts: Vec<(PlayerId, ObjectId, bool)> = Vec::new();
        for ((&p, pol), choice) in players.iter().zip(policies.iter_mut()).zip(choices) {
            if let Some(j) = choice {
                if let Some(value) = engine.player(p).try_probe(j) {
                    pol.observe(round, j, value);
                    posts.push((p, j, value));
                }
            }
        }
        // A round counts only if somebody *paid*: memo hits are free
        // and denials charge nothing, and free rounds would break the
        // `rounds == max per-player probes` invariant.
        if engine.total_probes() > paid_before {
            rounds += 1;
        }
        // Phase 3: queue for publication after the lag.
        if !posts.is_empty() {
            pending.push_back((round, posts));
        }
    }
    // Flush in-flight posts so the returned board is the complete
    // public record (estimates may then read it; the staleness already
    // shaped every in-run decision).
    while let Some((t, batch)) = pending.pop_front() {
        for (p, j, value) in batch {
            board.post(t, p, j, value);
        }
    }
    let estimates = policies.iter().map(|pol| pol.estimate(&board)).collect();
    RoundsResult {
        rounds,
        estimates,
        board,
    }
}

/// "Go it alone" as a round policy: probe `0..m` in order, estimate
/// from own probes only.
#[derive(Debug)]
pub struct SoloPolicy {
    m: usize,
    next: usize,
    known: BitVec,
    values: BitVec,
}

impl SoloPolicy {
    /// New solo prober over `m` objects.
    pub fn new(m: usize) -> Self {
        SoloPolicy {
            m,
            next: 0,
            known: BitVec::zeros(m),
            values: BitVec::zeros(m),
        }
    }
}

impl RoundPolicy for SoloPolicy {
    fn choose(&mut self, _round: u64, _board: &RoundBoard) -> Option<ObjectId> {
        if self.next < self.m {
            Some(self.next)
        } else {
            None
        }
    }

    fn observe(&mut self, _round: u64, j: ObjectId, value: bool) {
        self.known.set(j, true);
        self.values.set(j, value);
        self.next = self.next.max(j + 1);
    }

    fn estimate(&self, _board: &RoundBoard) -> BitVec {
        self.values.clone()
    }
}

/// Online crowd-following policy: sample `budget` random objects, then
/// idle; estimate = own probes where available, else the board
/// majority, else 0. The online analogue of the kNN strawman (it
/// ignores *who* posted, so it only works when the whole population
/// agrees — a deliberately weak but honest lockstep baseline).
#[derive(Debug)]
pub struct CrowdPolicy {
    order: Vec<ObjectId>,
    cursor: usize,
    budget: usize,
    known: BitVec,
    values: BitVec,
}

impl CrowdPolicy {
    /// Sample the objects of `order` (pre-shuffled by the caller for
    /// randomness control), up to `budget` probes.
    pub fn new(order: Vec<ObjectId>, budget: usize, m: usize) -> Self {
        CrowdPolicy {
            order,
            cursor: 0,
            budget,
            known: BitVec::zeros(m),
            values: BitVec::zeros(m),
        }
    }
}

impl RoundPolicy for CrowdPolicy {
    fn choose(&mut self, _round: u64, _board: &RoundBoard) -> Option<ObjectId> {
        if self.cursor < self.budget.min(self.order.len()) {
            Some(self.order[self.cursor])
        } else {
            None
        }
    }

    fn observe(&mut self, _round: u64, j: ObjectId, value: bool) {
        self.cursor += 1;
        self.known.set(j, true);
        self.values.set(j, value);
    }

    fn estimate(&self, board: &RoundBoard) -> BitVec {
        BitVec::from_fn(self.known.len(), |j| {
            if self.known.get(j) {
                self.values.get(j)
            } else {
                board.majority(j).unwrap_or(false)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use tmwia_model::generators::planted_community;
    use tmwia_model::matrix::PrefMatrix;
    use tmwia_model::rng::{rng_for, tags};

    #[test]
    fn solo_policy_reconstructs_exactly_in_m_rounds() {
        let inst = planted_community(4, 32, 4, 0, 1);
        let engine = ProbeEngine::new(inst.truth.clone());
        let players: Vec<PlayerId> = (0..4).collect();
        let mut policies: Vec<Box<dyn RoundPolicy>> = (0..4)
            .map(|_| Box::new(SoloPolicy::new(32)) as Box<dyn RoundPolicy>)
            .collect();
        let res = run_rounds(&engine, &players, &mut policies, 1000);
        assert_eq!(res.rounds, 32);
        for (i, &p) in players.iter().enumerate() {
            assert_eq!(&res.estimates[i], inst.truth.row(p));
            assert_eq!(engine.probes_of(p), 32);
        }
        assert_eq!(res.board.log().len(), 4 * 32);
    }

    #[test]
    fn lockstep_cost_matches_engine_accounting() {
        // The round count the driver reports must equal the engine's
        // max per-player charge (the invariant connecting the literal
        // runtime to the bulk-synchronous simulation).
        let inst = planted_community(8, 64, 8, 0, 2);
        let engine = ProbeEngine::new(inst.truth.clone());
        let players: Vec<PlayerId> = (0..8).collect();
        let mut policies: Vec<Box<dyn RoundPolicy>> = (0..8)
            .map(|p| {
                let mut order: Vec<ObjectId> = (0..64).collect();
                order.shuffle(&mut rng_for(2, tags::BASELINE, p as u64));
                Box::new(CrowdPolicy::new(order, 10 + p as usize, 64)) as Box<dyn RoundPolicy>
            })
            .collect();
        let res = run_rounds(&engine, &players, &mut policies, 1000);
        assert_eq!(res.rounds, engine.max_probes());
        assert_eq!(res.rounds, 17); // slowest player budget 10+7
    }

    #[test]
    fn crowd_policy_leverages_identical_peers() {
        // 16 identical players sampling 16 of 128 objects each: the
        // board majority covers most coordinates for everyone.
        let inst = planted_community(16, 128, 16, 0, 3);
        let engine = ProbeEngine::new(inst.truth.clone());
        let players: Vec<PlayerId> = (0..16).collect();
        let mut policies: Vec<Box<dyn RoundPolicy>> = (0..16)
            .map(|p| {
                let mut order: Vec<ObjectId> = (0..128).collect();
                order.shuffle(&mut rng_for(3, tags::BASELINE, p as u64));
                Box::new(CrowdPolicy::new(order, 16, 128)) as Box<dyn RoundPolicy>
            })
            .collect();
        let res = run_rounds(&engine, &players, &mut policies, 1000);
        // Coverage: 16·16 = 256 samples over 128 objects — nearly all
        // objects probed by someone; errors only on never-probed ones.
        let truth = inst.truth.row(0);
        for est in &res.estimates {
            assert!(est.hamming(truth) < 32, "err {}", est.hamming(truth));
        }
        // At a cost of only 16 rounds ≪ m = 128.
        assert_eq!(res.rounds, 16);
    }

    #[test]
    fn no_same_round_leakage() {
        // A policy that stops as soon as it *sees* any post can never
        // stop in the round the post was made.
        struct Watcher {
            asked: Vec<u64>,
        }
        impl RoundPolicy for Watcher {
            fn choose(&mut self, round: u64, board: &RoundBoard) -> Option<ObjectId> {
                if board.log().is_empty() {
                    self.asked.push(round);
                    Some(0)
                } else {
                    None
                }
            }
            fn observe(&mut self, _round: u64, _j: ObjectId, _value: bool) {}
            fn estimate(&self, _board: &RoundBoard) -> BitVec {
                BitVec::zeros(4)
            }
        }
        let engine = ProbeEngine::new(PrefMatrix::new(vec![BitVec::zeros(4); 2]));
        let mut policies: Vec<Box<dyn RoundPolicy>> = vec![
            Box::new(Watcher { asked: vec![] }),
            Box::new(Watcher { asked: vec![] }),
        ];
        let res = run_rounds(&engine, &[0, 1], &mut policies, 10);
        // Round 0: both see an empty board and probe. Round 1: both see
        // round-0 posts and stop. Exactly one active round.
        assert_eq!(res.rounds, 1);
        assert_eq!(res.board.log().len(), 2);
    }

    #[test]
    fn budget_cuts_execution_short() {
        let engine = ProbeEngine::new(PrefMatrix::new(vec![BitVec::zeros(100)]));
        let mut policies: Vec<Box<dyn RoundPolicy>> = vec![Box::new(SoloPolicy::new(100))];
        let res = run_rounds(&engine, &[0], &mut policies, 7);
        assert_eq!(res.rounds, 7);
        assert_eq!(engine.probes_of(0), 7);
    }

    #[test]
    fn board_votes_and_majority() {
        let mut board = RoundBoard::new(2);
        board.post(0, 0, 0, true);
        board.post(0, 1, 0, true);
        board.post(0, 2, 0, false);
        assert_eq!(board.votes(0), (2, 1));
        assert_eq!(board.majority(0), Some(true));
        assert_eq!(board.majority(1), None);
        board.post(1, 3, 1, false);
        assert_eq!(board.majority(1), Some(false));
    }

    #[test]
    fn free_rounds_do_not_count() {
        // Regression: a round in which no probe is *paid* (every chosen
        // probe is a free memo hit, or denied under faults) must not
        // increment `rounds`, or the `rounds == max per-player probes`
        // invariant breaks.
        struct Reprober {
            remaining: u32,
        }
        impl RoundPolicy for Reprober {
            fn choose(&mut self, _round: u64, _board: &RoundBoard) -> Option<ObjectId> {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    Some(0)
                } else {
                    None
                }
            }
            fn observe(&mut self, _round: u64, _j: ObjectId, _value: bool) {}
            fn estimate(&self, _board: &RoundBoard) -> BitVec {
                BitVec::zeros(4)
            }
        }
        let engine = ProbeEngine::new(PrefMatrix::new(vec![BitVec::zeros(4)]));
        let mut policies: Vec<Box<dyn RoundPolicy>> = vec![Box::new(Reprober { remaining: 5 })];
        let res = run_rounds(&engine, &[0], &mut policies, 100);
        // Five choices of the same object: only the first is paid.
        assert_eq!(engine.probes_of(0), 1);
        assert_eq!(res.rounds, 1);
        assert_eq!(res.rounds, engine.max_probes());
    }

    #[test]
    fn vote_counters_survive_u32_overflow() {
        // Tallies past u32::MAX must keep counting (posting 2^32 times
        // is too slow for a test, so seed the tally directly).
        let mut board = RoundBoard {
            log: Vec::new(),
            votes: vec![(u64::from(u32::MAX), 0)],
        };
        board.post(0, 0, 0, true);
        assert_eq!(board.votes(0), (u64::from(u32::MAX) + 1, 0));
        assert_eq!(board.majority(0), Some(true));
    }

    #[test]
    #[should_panic(expected = "one policy per player")]
    fn mismatched_policies_panic() {
        let engine = ProbeEngine::new(PrefMatrix::new(vec![BitVec::zeros(4)]));
        let mut policies: Vec<Box<dyn RoundPolicy>> = vec![];
        run_rounds(&engine, &[0], &mut policies, 1);
    }
}
