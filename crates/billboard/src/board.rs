//! The shared billboard.
//!
//! "To facilitate information sharing, it is assumed that the system
//! maintains a shared billboard … where users post the results of their
//! probes" (paper §1). Reads are free; only probes cost. The billboard
//! is therefore a plain concurrent multimap from a key (an algorithm
//! phase + object-subset identifier) to the values players posted under
//! it.
//!
//! Determinism: readers receive posts sorted by `(player, value)`, and
//! tallies are returned sorted, so downstream logic never observes
//! thread-scheduling order.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use tmwia_model::matrix::PlayerId;

/// A concurrent append-only multimap `K → [(PlayerId, V)]`.
///
/// `K` identifies a topic (e.g. "Zero Radius output for object subset
/// #12 at recursion depth 3"); `V` is whatever the players publish
/// (full vectors, per-part candidate indices, …).
///
/// **Staleness (fault injection).** Every post is stamped with the
/// board's current *epoch* (a counter a round-driven runtime advances
/// once per round via [`Billboard::advance_epoch`]). A board built with
/// [`Billboard::with_staleness`]`(lag)` hides posts newer than
/// `current_epoch − lag` from all reads, modeling readers that see a
/// bounded-lag cache of the billboard. With `lag = 0` (the default, and
/// any board whose epoch is never advanced) reads behave exactly as
/// before — posts are visible immediately.
///
/// ```
/// use tmwia_billboard::Billboard;
///
/// let board: Billboard<&str, u8> = Billboard::new();
/// board.post("round-1", 0, 7);
/// board.post("round-1", 1, 7);
/// board.post("round-1", 2, 9);
/// assert_eq!(board.tally(&"round-1"), vec![(7, 2), (9, 1)]);
/// assert_eq!(board.popular(&"round-1", 2), vec![7]);
/// ```
/// Post storage: key → epoch-stamped `(epoch, player, value)` entries.
type PostMap<K, V> = BTreeMap<K, Vec<(u64, PlayerId, V)>>;

#[derive(Debug)]
pub struct Billboard<K: Ord, V> {
    posts: RwLock<PostMap<K, V>>,
    epoch: AtomicU64,
    lag: u64,
}

impl<K: Ord, V> Default for Billboard<K, V> {
    fn default() -> Self {
        Billboard {
            posts: RwLock::new(BTreeMap::new()),
            epoch: AtomicU64::new(0),
            lag: 0,
        }
    }
}

impl<K: Ord + Clone, V: Clone + Ord> Billboard<K, V> {
    /// Empty billboard (immediate visibility).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty billboard whose reads lag `lag` epochs behind posts: a
    /// post made at epoch `e` is visible once the epoch reaches
    /// `e + lag`. `lag = 0` is [`Billboard::new`].
    pub fn with_staleness(lag: u64) -> Self {
        Billboard {
            lag,
            ..Self::default()
        }
    }

    /// Advance the epoch (a round boundary in a round-driven runtime).
    /// Returns the new epoch.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Is a post stamped `posted` visible at the current epoch?
    #[inline]
    fn visible(&self, posted: u64, now: u64) -> bool {
        posted + self.lag <= now
    }

    /// Player `p` posts `value` under `key`. Posts are never retracted
    /// (the billboard is append-only, like the paper's public record).
    pub fn post(&self, key: K, p: PlayerId, value: V) {
        let e = self.epoch();
        self.posts
            .write()
            .entry(key)
            .or_default()
            .push((e, p, value));
    }

    /// Post many values at once under distinct keys (single lock trip).
    pub fn post_batch(&self, items: impl IntoIterator<Item = (K, PlayerId, V)>) {
        let e = self.epoch();
        let mut map = self.posts.write();
        for (key, p, value) in items {
            map.entry(key).or_default().push((e, p, value));
        }
    }

    /// All *visible* posts under `key`, sorted by `(player, value)` for
    /// determinism. Empty if nobody posted.
    pub fn read(&self, key: &K) -> Vec<(PlayerId, V)> {
        let now = self.epoch();
        let map = self.posts.read();
        let mut out: Vec<(PlayerId, V)> = map
            .get(key)
            .map(|posts| {
                posts
                    .iter()
                    .filter(|&&(e, _, _)| self.visible(e, now))
                    .map(|(_, p, v)| (*p, v.clone()))
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Number of visible posts under `key`.
    pub fn count(&self, key: &K) -> usize {
        let now = self.epoch();
        self.posts.read().get(key).map_or(0, |posts| {
            posts
                .iter()
                .filter(|&&(e, _, _)| self.visible(e, now))
                .count()
        })
    }

    /// Tally of distinct visible values under `key`: `(value, votes)`
    /// pairs, sorted by value. The paper's vote-counting step ("vectors
    /// voted for by at least an α/2 fraction", Zero Radius step 4).
    pub fn tally(&self, key: &K) -> Vec<(V, usize)> {
        let now = self.epoch();
        let map = self.posts.read();
        let mut counts: BTreeMap<&V, usize> = BTreeMap::new();
        if let Some(posts) = map.get(key) {
            for (e, _, v) in posts {
                if self.visible(*e, now) {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<(V, usize)> = counts.into_iter().map(|(v, c)| (v.clone(), c)).collect();
        out.sort();
        out
    }

    /// Every key with at least one *visible* post, paired with its
    /// posts sorted by `(player, value)` — the whole-board analogue of
    /// [`Billboard::read`]. Snapshot builders (the serving layer's
    /// copy-on-write seal) use this to materialize a consistent view in
    /// one lock trip instead of a read per key.
    pub fn visible_posts(&self) -> Vec<(K, Vec<(PlayerId, V)>)> {
        let now = self.epoch();
        let map = self.posts.read();
        let mut out = Vec::with_capacity(map.len());
        for (key, posts) in map.iter() {
            let mut entries: Vec<(PlayerId, V)> = posts
                .iter()
                .filter(|&&(e, _, _)| self.visible(e, now))
                .map(|(_, p, v)| (*p, v.clone()))
                .collect();
            if entries.is_empty() {
                continue;
            }
            entries.sort();
            out.push((key.clone(), entries));
        }
        out
    }

    /// Values under `key` with at least `min_votes` votes, sorted —
    /// the "popular vectors" of Zero Radius step 4 / Small Radius
    /// step 1b.
    pub fn popular(&self, key: &K, min_votes: usize) -> Vec<V> {
        self.tally(key)
            .into_iter()
            .filter(|&(_, c)| c >= min_votes)
            .map(|(v, _)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_read_sorted() {
        let b: Billboard<&str, u32> = Billboard::new();
        b.post("k", 3, 30);
        b.post("k", 1, 10);
        b.post("k", 2, 20);
        assert_eq!(b.read(&"k"), vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(b.read(&"missing"), vec![]);
        assert_eq!(b.count(&"k"), 3);
    }

    #[test]
    fn tally_counts_votes() {
        let b: Billboard<u8, &str> = Billboard::new();
        for (p, v) in [(0, "x"), (1, "y"), (2, "x"), (3, "x")] {
            b.post(7, p, v);
        }
        assert_eq!(b.tally(&7), vec![("x", 3), ("y", 1)]);
        assert_eq!(b.popular(&7, 2), vec!["x"]);
        assert_eq!(b.popular(&7, 4), Vec::<&str>::new());
    }

    #[test]
    fn post_batch_single_trip() {
        let b: Billboard<u8, u8> = Billboard::new();
        b.post_batch([(0, 0, 1), (0, 1, 1), (1, 0, 2)]);
        assert_eq!(b.count(&0), 2);
        assert_eq!(b.count(&1), 1);
    }

    #[test]
    fn concurrent_posts_all_arrive() {
        let b: Billboard<u8, usize> = Billboard::new();
        rayon::scope(|s| {
            for p in 0..16 {
                let br = &b;
                s.spawn(move |_| {
                    for i in 0..100 {
                        br.post((i % 4) as u8, p, i);
                    }
                });
            }
        });
        let total: usize = (0..4).map(|k| b.count(&k)).sum();
        assert_eq!(total, 1600);
        // Reads are deterministic regardless of arrival order.
        let r1 = b.read(&0);
        let r2 = b.read(&0);
        assert_eq!(r1, r2);
    }

    #[test]
    fn default_is_empty() {
        let b: Billboard<u8, u8> = Billboard::default();
        assert_eq!(b.count(&0), 0);
    }

    #[test]
    fn zero_lag_ignores_epochs() {
        let b: Billboard<u8, u8> = Billboard::new();
        b.post(0, 0, 1);
        b.advance_epoch();
        b.post(0, 1, 2);
        // Immediate visibility regardless of when posts landed.
        assert_eq!(b.count(&0), 2);
        assert_eq!(b.read(&0), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn staleness_hides_recent_posts_until_lag_elapses() {
        let b: Billboard<u8, u8> = Billboard::with_staleness(2);
        b.post(0, 0, 1); // epoch 0, visible at epoch ≥ 2
        assert_eq!(b.count(&0), 0, "epoch 0: too fresh");
        b.advance_epoch();
        assert_eq!(b.count(&0), 0, "epoch 1: still too fresh");
        b.post(0, 1, 2); // epoch 1, visible at epoch ≥ 3
        b.advance_epoch();
        assert_eq!(b.read(&0), vec![(0, 1)], "epoch 2: first post only");
        assert_eq!(b.tally(&0), vec![(1, 1)]);
        b.advance_epoch();
        assert_eq!(b.count(&0), 2, "epoch 3: everything visible");
        assert_eq!(b.tally(&0), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn epoch_counter_advances() {
        let b: Billboard<u8, u8> = Billboard::new();
        assert_eq!(b.epoch(), 0);
        assert_eq!(b.advance_epoch(), 1);
        assert_eq!(b.advance_epoch(), 2);
        assert_eq!(b.epoch(), 2);
    }
}
