//! The shared billboard.
//!
//! "To facilitate information sharing, it is assumed that the system
//! maintains a shared billboard … where users post the results of their
//! probes" (paper §1). Reads are free; only probes cost. The billboard
//! is therefore a plain concurrent multimap from a key (an algorithm
//! phase + object-subset identifier) to the values players posted under
//! it.
//!
//! Determinism: readers receive posts sorted by `(player, value)`, and
//! tallies are returned sorted, so downstream logic never observes
//! thread-scheduling order.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use tmwia_model::matrix::PlayerId;

/// A concurrent append-only multimap `K → [(PlayerId, V)]`.
///
/// `K` identifies a topic (e.g. "Zero Radius output for object subset
/// #12 at recursion depth 3"); `V` is whatever the players publish
/// (full vectors, per-part candidate indices, …).
///
/// ```
/// use tmwia_billboard::Billboard;
///
/// let board: Billboard<&str, u8> = Billboard::new();
/// board.post("round-1", 0, 7);
/// board.post("round-1", 1, 7);
/// board.post("round-1", 2, 9);
/// assert_eq!(board.tally(&"round-1"), vec![(7, 2), (9, 1)]);
/// assert_eq!(board.popular(&"round-1", 2), vec![7]);
/// ```
#[derive(Debug)]
pub struct Billboard<K: Ord, V> {
    posts: RwLock<BTreeMap<K, Vec<(PlayerId, V)>>>,
}

impl<K: Ord, V> Default for Billboard<K, V> {
    fn default() -> Self {
        Billboard {
            posts: RwLock::new(BTreeMap::new()),
        }
    }
}

impl<K: Ord + Clone, V: Clone + Ord> Billboard<K, V> {
    /// Empty billboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Player `p` posts `value` under `key`. Posts are never retracted
    /// (the billboard is append-only, like the paper's public record).
    pub fn post(&self, key: K, p: PlayerId, value: V) {
        self.posts.write().entry(key).or_default().push((p, value));
    }

    /// Post many values at once under distinct keys (single lock trip).
    pub fn post_batch(&self, items: impl IntoIterator<Item = (K, PlayerId, V)>) {
        let mut map = self.posts.write();
        for (key, p, value) in items {
            map.entry(key).or_default().push((p, value));
        }
    }

    /// All posts under `key`, sorted by `(player, value)` for
    /// determinism. Empty if nobody posted.
    pub fn read(&self, key: &K) -> Vec<(PlayerId, V)> {
        let map = self.posts.read();
        let mut out = map.get(key).cloned().unwrap_or_default();
        out.sort();
        out
    }

    /// Number of posts under `key`.
    pub fn count(&self, key: &K) -> usize {
        self.posts.read().get(key).map_or(0, |v| v.len())
    }

    /// Tally of distinct values under `key`: `(value, votes)` pairs,
    /// sorted by value. The paper's vote-counting step ("vectors voted
    /// for by at least an α/2 fraction", Zero Radius step 4).
    pub fn tally(&self, key: &K) -> Vec<(V, usize)> {
        let map = self.posts.read();
        let mut counts: BTreeMap<&V, usize> = BTreeMap::new();
        if let Some(posts) = map.get(key) {
            for (_, v) in posts {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(V, usize)> = counts.into_iter().map(|(v, c)| (v.clone(), c)).collect();
        out.sort();
        out
    }

    /// Values under `key` with at least `min_votes` votes, sorted —
    /// the "popular vectors" of Zero Radius step 4 / Small Radius
    /// step 1b.
    pub fn popular(&self, key: &K, min_votes: usize) -> Vec<V> {
        self.tally(key)
            .into_iter()
            .filter(|&(_, c)| c >= min_votes)
            .map(|(v, _)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_read_sorted() {
        let b: Billboard<&str, u32> = Billboard::new();
        b.post("k", 3, 30);
        b.post("k", 1, 10);
        b.post("k", 2, 20);
        assert_eq!(b.read(&"k"), vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(b.read(&"missing"), vec![]);
        assert_eq!(b.count(&"k"), 3);
    }

    #[test]
    fn tally_counts_votes() {
        let b: Billboard<u8, &str> = Billboard::new();
        for (p, v) in [(0, "x"), (1, "y"), (2, "x"), (3, "x")] {
            b.post(7, p, v);
        }
        assert_eq!(b.tally(&7), vec![("x", 3), ("y", 1)]);
        assert_eq!(b.popular(&7, 2), vec!["x"]);
        assert_eq!(b.popular(&7, 4), Vec::<&str>::new());
    }

    #[test]
    fn post_batch_single_trip() {
        let b: Billboard<u8, u8> = Billboard::new();
        b.post_batch([(0, 0, 1), (0, 1, 1), (1, 0, 2)]);
        assert_eq!(b.count(&0), 2);
        assert_eq!(b.count(&1), 1);
    }

    #[test]
    fn concurrent_posts_all_arrive() {
        let b: Billboard<u8, usize> = Billboard::new();
        rayon::scope(|s| {
            for p in 0..16 {
                let br = &b;
                s.spawn(move |_| {
                    for i in 0..100 {
                        br.post((i % 4) as u8, p, i);
                    }
                });
            }
        });
        let total: usize = (0..4).map(|k| b.count(&k)).sum();
        assert_eq!(total, 1600);
        // Reads are deterministic regardless of arrival order.
        let r1 = b.read(&0);
        let r2 = b.read(&0);
        assert_eq!(r1, r2);
    }

    #[test]
    fn default_is_empty() {
        let b: Billboard<u8, u8> = Billboard::default();
        assert_eq!(b.count(&0), 0);
    }
}
