//! The probe primitive: the only channel from the hidden truth to an
//! algorithm, charged one unit per revealed coordinate.
//!
//! Concurrency design: probes are issued from rayon worker threads (one
//! logical player per task). Per-player cost counters are relaxed
//! `AtomicU64`s — they are statistics, not synchronization. The
//! per-player probe memo is a `parking_lot::Mutex<PlayerCache>`; only
//! the thread currently simulating that player touches it, so the lock
//! is uncontended in practice but keeps the engine `Sync` without
//! `unsafe`.

use crate::cost::{CostLedger, CostSnapshot};
use crate::fault::{FaultPlan, FaultState, LivenessEpoch};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use tmwia_model::bitvec::BitVec;
use tmwia_model::matrix::{ObjectId, PlayerId, PrefMatrix};

/// Per-player memo of already-revealed coordinates.
///
/// The paper charges a player once per revealed entry: once player `p`
/// has probed object `j` the grade is public knowledge (it is on the
/// billboard), so re-reading it is free. Algorithms that want the
/// stricter "every probe pays" semantics (the determinism remark after
/// Theorem 3.2) can call [`PlayerHandle::probe_fresh`].
#[derive(Debug)]
struct PlayerCache {
    probed: BitVec,
    values: BitVec,
}

/// Owns the hidden preference matrix and meters every access to it.
///
/// ```
/// use tmwia_billboard::ProbeEngine;
/// use tmwia_model::{matrix::PrefMatrix, BitVec};
///
/// let truth = PrefMatrix::new(vec![BitVec::from_bools(&[true, false, true])]);
/// let engine = ProbeEngine::new(truth);
/// let me = engine.player(0);
/// assert!(me.probe(0));          // one unit charged
/// assert!(!me.probe(1));         // second unit
/// assert!(me.probe(0));          // cached — free
/// assert_eq!(engine.probes_of(0), 2);
/// assert_eq!(engine.max_probes(), 2); // round complexity so far
/// ```
pub struct ProbeEngine {
    truth: PrefMatrix,
    counters: Vec<AtomicU64>,
    caches: Vec<Mutex<PlayerCache>>,
    /// Compiled fault regime. `None` for the fault-free model — the
    /// clean probe path then pays only a predicted-not-taken branch
    /// (guarded by the `substrate` bench), and `with_faults` normalizes
    /// a no-op [`FaultPlan`] to `None` so the two constructions are the
    /// same engine.
    faults: Option<Box<FaultState>>,
}

impl ProbeEngine {
    /// Wrap a hidden truth matrix (fault-free model).
    pub fn new(truth: PrefMatrix) -> Self {
        Self::with_faults(truth, FaultPlan::none())
    }

    /// Wrap a hidden truth matrix under a fault regime. A
    /// [`FaultPlan::is_none`] plan compiles to the exact fault-free
    /// engine (bit-identical behavior and cost to [`ProbeEngine::new`]).
    pub fn with_faults(truth: PrefMatrix, plan: FaultPlan) -> Self {
        let n = truth.n();
        let m = truth.m();
        let faults = if plan.is_none() {
            None
        } else {
            Some(Box::new(FaultState::compile(plan, n)))
        };
        ProbeEngine {
            truth,
            counters: (0..n).map(|_| AtomicU64::new(0)).collect(),
            caches: (0..n)
                .map(|_| {
                    Mutex::new(PlayerCache {
                        probed: BitVec::zeros(m),
                        values: BitVec::zeros(m),
                    })
                })
                .collect(),
            faults,
        }
    }

    /// Number of players.
    #[inline]
    pub fn n(&self) -> usize {
        self.truth.n()
    }

    /// Number of objects.
    #[inline]
    pub fn m(&self) -> usize {
        self.truth.m()
    }

    /// A probing handle bound to player `p`.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn player(&self, p: PlayerId) -> PlayerHandle<'_> {
        assert!(p < self.n(), "player {p} out of range {}", self.n());
        PlayerHandle { engine: self, p }
    }

    /// Probes charged to player `p` so far.
    pub fn probes_of(&self, p: PlayerId) -> u64 {
        self.counters[p].load(Ordering::Relaxed)
    }

    /// Objects player `p` has already paid for, ascending — the probe
    /// memo's key set. Serving-layer crash recovery persists this and
    /// re-probes on restore (values re-derive from the truth matrix).
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn probed_objects(&self, p: PlayerId) -> Vec<ObjectId> {
        assert!(p < self.n(), "player {p} out of range {}", self.n());
        let cache = self.caches[p].lock();
        (0..self.m()).filter(|&j| cache.probed.get(j)).collect()
    }

    /// Total probes charged across all players.
    pub fn total_probes(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Round complexity so far: the maximum per-player charge (each
    /// round every player performs at most one probe, so an execution
    /// needs at least this many rounds).
    pub fn max_probes(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Snapshot of all per-player charges (for phase-cost deltas).
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot::new(
            self.counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// The hidden truth — **test/metric use only**. Algorithms must go
    /// through [`PlayerHandle::probe`]; this accessor exists so that
    /// evaluation code can score outputs without replicating the matrix.
    pub fn truth(&self) -> &PrefMatrix {
        &self.truth
    }

    /// The compiled fault state, if any fault is active. Metric /
    /// experiment code uses this to mask the corrupted mass; algorithms
    /// should only ever need [`ProbeEngine::is_live`].
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_deref()
    }

    /// Has player `p` stopped answering probes — crash-set member past
    /// its crash round, or probe budget exhausted? Always `false` in
    /// the fault-free model.
    ///
    /// This is an *instantaneous* read of `p`'s live counter. It is
    /// schedule-independent only when nothing else can be probing `p`
    /// concurrently (e.g. the caller is the single thread simulating
    /// `p`, or the engine is quiescent). Drivers asking about *other*
    /// players mid-phase must capture a [`ProbeEngine::begin_round`]
    /// epoch at a barrier and read that instead.
    pub fn is_dead(&self, p: PlayerId) -> bool {
        match &self.faults {
            None => false,
            Some(f) => f.denies(p, self.counters[p].load(Ordering::Relaxed)),
        }
    }

    /// Capture a frozen [`LivenessEpoch`]: a snapshot of every player's
    /// paid-probe count and the deadness it implies, taken at a phase
    /// barrier of a bulk-synchronous driver. All cross-player liveness
    /// observations during the following phase resolve against the
    /// snapshot, so they cannot depend on how worker threads interleave
    /// within the phase. Fault-free engines return the constant
    /// all-live epoch without touching any counter.
    ///
    /// The snapshot equals the live counters only for players that are
    /// quiescent at capture time — capture at a barrier where the
    /// players you will ask about have finished their phase.
    pub fn begin_round(&self) -> LivenessEpoch {
        match &self.faults {
            None => LivenessEpoch::all_live(),
            Some(f) => f.freeze(
                self.counters
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
            ),
        }
    }

    /// Negation of [`ProbeEngine::is_dead`].
    #[inline]
    pub fn is_live(&self, p: PlayerId) -> bool {
        !self.is_dead(p)
    }

    /// Players *scheduled* to crash under the active plan (empty when
    /// fault-free). Sorted by id.
    pub fn crashed_players(&self) -> Vec<PlayerId> {
        self.faults
            .as_ref()
            .map_or_else(Vec::new, |f| f.crash_set())
    }

    /// Billboard read lag prescribed by the active fault plan (0 when
    /// fault-free). Round-driven runtimes consult this so their
    /// signatures stay fault-agnostic.
    pub fn stale_lag(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.plan().stale_lag)
    }

    /// Full fault-attributed cost ledger: paid probes per player split
    /// into clean vs flipped, plus free denied attempts.
    pub fn ledger(&self) -> CostLedger {
        let n = self.n();
        let paid: Vec<u64> = (0..n).map(|p| self.probes_of(p)).collect();
        let (flipped, denied) = match &self.faults {
            None => (vec![0; n], vec![0; n]),
            Some(f) => (
                (0..n).map(|p| f.flipped_of(p)).collect(),
                (0..n).map(|p| f.denied_of(p)).collect(),
            ),
        };
        CostLedger::new(paid, flipped, denied)
    }

    fn charge(&self, p: PlayerId) {
        self.counters[p].fetch_add(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for ProbeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeEngine")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("total_probes", &self.total_probes())
            .finish()
    }
}

/// A probing capability for one player. Cheap to copy around; borrows
/// the engine.
#[derive(Clone, Copy)]
pub struct PlayerHandle<'a> {
    engine: &'a ProbeEngine,
    p: PlayerId,
}

impl<'a> PlayerHandle<'a> {
    /// This handle's player id.
    #[inline]
    pub fn id(&self) -> PlayerId {
        self.p
    }

    /// Number of objects in the instance.
    #[inline]
    pub fn m(&self) -> usize {
        self.engine.m()
    }

    /// Probe object `j`: reveal `v(p)[j]`, charging one unit unless this
    /// player has already probed `j` (revealed grades are public on the
    /// billboard, so re-reads are free).
    ///
    /// Under an active [`FaultPlan`]: an already-memoized grade is still
    /// returned for free (it is public knowledge); a fresh probe by a
    /// dead/throttled player is *denied* — no charge, no reveal, the
    /// default `false` comes back and the denial is tallied — so
    /// fault-oblivious algorithm code stays total and deterministic.
    /// Fault-aware drivers use [`PlayerHandle::try_probe`] to observe
    /// denials. Flips corrupt the value before it enters the memo, so a
    /// noisy grade is consistently noisy.
    pub fn probe(&self, j: ObjectId) -> bool {
        self.try_probe(j).unwrap_or(false)
    }

    /// Like [`PlayerHandle::probe`], but surfaces denial: `None` means
    /// the player is dead/throttled *and* has no memoized grade for `j`
    /// (nothing was charged or revealed).
    pub fn try_probe(&self, j: ObjectId) -> Option<bool> {
        let mut cache = self.engine.caches[self.p].lock();
        if cache.probed.get(j) {
            return Some(cache.values.get(j));
        }
        let mut v = self.engine.truth.value(self.p, j);
        if let Some(f) = &self.engine.faults {
            if f.denies(self.p, self.engine.counters[self.p].load(Ordering::Relaxed)) {
                drop(cache);
                f.note_denial(self.p);
                return None;
            }
            if f.is_flipped(self.p, j) {
                v = !v;
                f.note_flip(self.p);
            }
        }
        cache.probed.set(j, true);
        cache.values.set(j, v);
        drop(cache);
        self.engine.charge(self.p);
        Some(v)
    }

    /// Probe object `j`, always paying — the strict semantics used when
    /// a subroutine must be oblivious to earlier phases (remark after
    /// Theorem 3.2: "Select disregards probes done before its
    /// execution"). Still records the value in the memo.
    ///
    /// Fault semantics match [`PlayerHandle::probe`]: a denied attempt
    /// is free and falls back to the memo (or `false`), and flips are
    /// the same per-`(player, object)` decision, so re-paying never
    /// changes an answer.
    pub fn probe_fresh(&self, j: ObjectId) -> bool {
        let mut cache = self.engine.caches[self.p].lock();
        let mut v = self.engine.truth.value(self.p, j);
        if let Some(f) = &self.engine.faults {
            if f.denies(self.p, self.engine.counters[self.p].load(Ordering::Relaxed)) {
                let fallback = cache.probed.get(j) && cache.values.get(j);
                drop(cache);
                f.note_denial(self.p);
                return fallback;
            }
            if f.is_flipped(self.p, j) {
                v = !v;
                f.note_flip(self.p);
            }
        }
        cache.probed.set(j, true);
        cache.values.set(j, v);
        drop(cache);
        self.engine.charge(self.p);
        v
    }

    /// Has this player already paid for object `j`?
    pub fn already_probed(&self, j: ObjectId) -> bool {
        self.engine.caches[self.p].lock().probed.get(j)
    }

    /// Probes charged to this player so far.
    pub fn cost(&self) -> u64 {
        self.engine.probes_of(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tmwia_model::bitvec::BitVec;

    fn engine(n: usize, m: usize, seed: u64) -> ProbeEngine {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<BitVec> = (0..n).map(|_| BitVec::random(m, &mut rng)).collect();
        ProbeEngine::new(PrefMatrix::new(rows))
    }

    #[test]
    fn probe_reveals_truth_and_charges_once() {
        let eng = engine(4, 32, 1);
        let h = eng.player(2);
        let direct = eng.truth().value(2, 7);
        assert_eq!(h.probe(7), direct);
        assert_eq!(h.cost(), 1);
        // Cached re-probe is free and consistent.
        assert_eq!(h.probe(7), direct);
        assert_eq!(h.cost(), 1);
        assert!(h.already_probed(7));
        assert!(!h.already_probed(8));
    }

    #[test]
    fn probe_fresh_always_pays() {
        let eng = engine(2, 16, 2);
        let h = eng.player(0);
        h.probe(3);
        h.probe_fresh(3);
        h.probe_fresh(3);
        assert_eq!(h.cost(), 3);
    }

    #[test]
    fn counters_are_per_player() {
        let eng = engine(3, 16, 3);
        eng.player(0).probe(0);
        eng.player(0).probe(1);
        eng.player(2).probe(0);
        assert_eq!(eng.probes_of(0), 2);
        assert_eq!(eng.probes_of(1), 0);
        assert_eq!(eng.probes_of(2), 1);
        assert_eq!(eng.total_probes(), 3);
        assert_eq!(eng.max_probes(), 2);
    }

    #[test]
    fn snapshot_reflects_current_charges() {
        let eng = engine(2, 8, 4);
        eng.player(1).probe(0);
        let snap = eng.snapshot();
        assert_eq!(snap.per_player(), &[0, 1]);
    }

    #[test]
    fn parallel_probing_is_exact() {
        // Many threads probing distinct players: totals must be exact,
        // not approximately right.
        let eng = engine(8, 256, 5);
        rayon::scope(|s| {
            for p in 0..8 {
                let engr = &eng;
                s.spawn(move |_| {
                    let h = engr.player(p);
                    for j in 0..256 {
                        h.probe(j);
                    }
                });
            }
        });
        assert_eq!(eng.total_probes(), 8 * 256);
        assert_eq!(eng.max_probes(), 256);
        for p in 0..8 {
            assert_eq!(eng.probes_of(p), 256);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_player_panics() {
        engine(2, 8, 6).player(2);
    }

    #[test]
    fn begin_round_freezes_liveness_against_later_probes() {
        use crate::fault::FaultPlan;
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<BitVec> = (0..4).map(|_| BitVec::random(16, &mut rng)).collect();
        let plan = FaultPlan {
            probe_budget: Some(2),
            ..FaultPlan::none()
        };
        let eng = ProbeEngine::with_faults(PrefMatrix::new(rows.clone()), plan);
        let before = eng.begin_round();
        assert!((0..4).all(|p| before.is_live(p)));
        // Exhaust player 0's budget. The live view changes; the epoch
        // captured before the probes does not.
        eng.player(0).probe(0);
        eng.player(0).probe(1);
        assert!(eng.is_dead(0));
        assert!(before.is_live(0), "epoch must stay frozen");
        let after = eng.begin_round();
        assert!(after.is_dead(0));
        assert_eq!(after.paid(0), 2);
        // Fault-free engines hand out the constant all-live epoch.
        let clean = ProbeEngine::new(PrefMatrix::new(rows));
        clean.player(1).probe(0);
        assert!(clean.begin_round().is_live(1));
        assert_eq!(clean.begin_round().paid(1), 0);
    }
}
