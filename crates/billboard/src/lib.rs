//! # tmwia-billboard
//!
//! The *substrate* of the SPAA'06 interactive recommendation model: the
//! probe primitive with unit-cost accounting, the shared billboard, and
//! a deterministic parallel execution layer.
//!
//! The model (paper §1.1): the only way any player learns anything about
//! its hidden preference vector is to **probe** an object, at unit cost;
//! everything a player learns it may post on a public **billboard** that
//! everyone reads for free. The algorithm proceeds in synchronous
//! rounds — one probe per player per round — so an execution's *round
//! complexity* equals the maximum number of probes charged to any single
//! player.
//!
//! * [`ProbeEngine`] owns the hidden [`PrefMatrix`] and charges probes;
//!   algorithms access truth **only** through [`PlayerHandle::probe`].
//! * [`Billboard`] is a typed concurrent bulletin: players post values
//!   under keys, everyone can read and tally them; reads return
//!   deterministically ordered data so parallel runs are reproducible.
//! * [`engine`] provides order-preserving parallel iteration over
//!   players (rayon under the hood) so "all players do X" loops use all
//!   cores without perturbing results.
//! * [`fault`] is the deterministic fault-injection layer: a seeded
//!   [`FaultPlan`] (crash-stop players, Bernoulli grade flips, stale
//!   billboard reads, probe budgets) compiled into the engine, with the
//!   [`cost::CostLedger`] attributing which probes the faults corrupted
//!   or denied. `FaultPlan::none()` is bit-identical to the fault-free
//!   engine. Cross-player liveness is observed through frozen
//!   [`LivenessEpoch`] snapshots ([`ProbeEngine::begin_round`]) so
//!   fault-injected runs stay byte-reproducible on any schedule.

#![forbid(unsafe_code)]

pub mod board;
pub mod cost;
pub mod engine;
pub mod fault;
pub mod probe;
pub mod rounds;

pub use board::Billboard;
pub use cost::{CostLedger, CostSnapshot, PhaseCost};
pub use engine::{live_players, par_map_phased, par_map_players, par_map_range, run_sequential};
pub use fault::{FaultPlan, FaultState, LivenessEpoch};
pub use probe::{PlayerHandle, ProbeEngine};
pub use rounds::{run_rounds, CrowdPolicy, RoundBoard, RoundPolicy, RoundsResult, SoloPolicy};

// Re-export the model ids so downstream crates rarely need tmwia-model
// imports just for types.
pub use tmwia_model::matrix::{ObjectId, PlayerId, PrefMatrix};
