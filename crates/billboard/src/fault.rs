//! Deterministic fault injection for the probe/billboard substrate.
//!
//! The paper's model is fault-free: every player is alive, honest, and
//! grades from a fixed hidden vector. Real interactive recommenders see
//! none of that luxury — users go silent (crash-stop), mis-grade items
//! (noisy answers), read a stale cache of the billboard, or are
//! rate-limited. A [`FaultPlan`] describes such a regime; the
//! [`crate::ProbeEngine`] compiles it into a [`FaultState`] whose every
//! decision is a pure function of `(plan seed, player, object, probe
//! count)` via the same `derive` mixing the algorithms use, so a faulty
//! run is exactly as byte-reproducible as a clean one.
//!
//! Fault semantics (all deterministic):
//!
//! * **Crash-stop** — exactly `⌊crash_fraction · n⌋` players (the ones
//!   ranked lowest by `derive(seed, FAULT_CRASH, p)`) stop probing after
//!   their `crash_round`-th *paid* probe. "Round" here is the paper's
//!   complexity measure — a player's own probe count — so crashing is
//!   independent of scheduling.
//! * **Noisy grades** — each `(player, object)` pair is flipped with
//!   probability `flip_prob`, decided by thresholding
//!   `derive(seed, FAULT_FLIP, p ‖ j)`; the flipped value is what lands
//!   in the probe memo, so re-reads stay self-consistent (a noisy user
//!   is *consistently* wrong about an item, as in the latent-source
//!   noisy-preference models).
//! * **Stale billboard** — reads lag `stale_lag` rounds behind posts in
//!   the round-driven runtimes (see [`crate::Billboard::with_staleness`]
//!   and the lockstep drivers).
//! * **Throttling** — `probe_budget` caps paid probes per player; once
//!   exhausted the player is treated exactly like a crashed one.
//!
//! A denied probe costs nothing and reveals nothing: the engine falls
//! back to the player's memo (or a default `false`) so non-fault-aware
//! callers remain total, and the denial is tallied in the
//! [`crate::cost::CostLedger`].

use std::sync::atomic::{AtomicU64, Ordering};
use tmwia_model::matrix::{ObjectId, PlayerId};
use tmwia_model::rng::{derive, tags};

/// A frozen snapshot of every player's liveness, captured at a phase
/// barrier (see [`crate::ProbeEngine::begin_round`]).
///
/// Cross-player fault observations — "which players may vote?", "whose
/// posts reach Coalesce?", "is the sibling half done or dead?" — must
/// never read the live probe counters: other workers mutate them
/// concurrently, so the answer would depend on thread interleaving.
/// Instead a driver captures an epoch at a point where the players it
/// will ask about are quiescent (a bulk-synchronous phase barrier) and
/// resolves every such read against the snapshot. A player's *own*
/// deadness at probe time still uses its own counter, which only its
/// own probes advance and is therefore schedule-independent.
///
/// The snapshot is an immutable value object: once captured it cannot
/// race with anything. For a fault-free engine the epoch is the cheap
/// constant "everyone live" and allocates nothing.
#[derive(Debug, Clone)]
pub struct LivenessEpoch {
    /// `None` = fault-free engine: everyone is live forever.
    frozen: Option<FrozenEpoch>,
}

#[derive(Debug, Clone)]
struct FrozenEpoch {
    dead: Vec<bool>,
    paid: Vec<u64>,
    stale_lag: u64,
}

impl LivenessEpoch {
    /// The constant all-live epoch of a fault-free engine.
    pub fn all_live() -> Self {
        LivenessEpoch { frozen: None }
    }

    /// Assemble an epoch from externally tracked liveness. The serving
    /// layer's session registry reuses the fault layer's snapshot
    /// semantics for churn: a departed (or never-admitted) player slot
    /// is "dead" exactly like a crashed one, and the epoch is sealed at
    /// the tick barrier, so readers never observe a half-open session.
    pub fn from_parts(dead: Vec<bool>, paid: Vec<u64>, stale_lag: u64) -> Self {
        debug_assert_eq!(dead.len(), paid.len());
        LivenessEpoch {
            frozen: Some(FrozenEpoch {
                dead,
                paid,
                stale_lag,
            }),
        }
    }

    /// Was `p` dead (crashed or out of budget) when the epoch was
    /// captured?
    #[inline]
    pub fn is_dead(&self, p: PlayerId) -> bool {
        self.frozen.as_ref().is_some_and(|f| f.dead[p])
    }

    /// Negation of [`LivenessEpoch::is_dead`].
    #[inline]
    pub fn is_live(&self, p: PlayerId) -> bool {
        !self.is_dead(p)
    }

    /// Paid probes of `p` at capture time (0 for an all-live epoch,
    /// which belongs to an engine that never consults the figure).
    pub fn paid(&self, p: PlayerId) -> u64 {
        self.frozen.as_ref().map_or(0, |f| f.paid[p])
    }

    /// Billboard read lag of the plan active at capture time.
    pub fn stale_lag(&self) -> u64 {
        self.frozen.as_ref().map_or(0, |f| f.stale_lag)
    }

    /// The subset of `players` live at capture time, in input order.
    /// All of them (a cheap copy) for an all-live epoch.
    pub fn live_players(&self, players: &[PlayerId]) -> Vec<PlayerId> {
        players
            .iter()
            .copied()
            .filter(|&p| self.is_live(p))
            .collect()
    }
}

/// A declarative, seed-driven fault regime. `FaultPlan::none()` is the
/// paper's fault-free model and compiles to literally no engine state
/// (the clean probe path is unchanged).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed for every fault decision (independent of the
    /// algorithm's seed so the two randomness domains never collide).
    pub seed: u64,
    /// Bernoulli probability that a `(player, object)` grade is flipped.
    pub flip_prob: f64,
    /// Fraction of players in the crash set (exact count `⌊f · n⌋`).
    pub crash_fraction: f64,
    /// Paid-probe count after which a crash-set player stops answering.
    pub crash_round: u64,
    /// Billboard read lag in rounds (0 or 1 = the synchronous model's
    /// usual next-round visibility; `L > 1` delays posts `L` rounds).
    pub stale_lag: u64,
    /// Per-player cap on paid probes (`None` = unlimited).
    pub probe_budget: Option<u64>,
}

impl FaultPlan {
    /// The fault-free plan: no crashes, no flips, no lag, no budget.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            flip_prob: 0.0,
            crash_fraction: 0.0,
            crash_round: 0,
            stale_lag: 0,
            probe_budget: None,
        }
    }

    /// Does this plan inject any fault at all? (The seed is irrelevant
    /// when nothing consumes it.)
    pub fn is_none(&self) -> bool {
        self.flip_prob <= 0.0
            && self.crash_fraction <= 0.0
            && self.stale_lag == 0
            && self.probe_budget.is_none()
    }

    /// Parse a CLI fault spec: `none`, or a comma list of
    /// `flip=EPS`, `crash=FRAC[@ROUND]`, `lag=L`, `budget=B`,
    /// `seed=S` — e.g. `flip=0.05,crash=0.25@8,lag=2`.
    ///
    /// `default_seed` seeds the plan unless `seed=` overrides it.
    pub fn parse(spec: &str, default_seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: default_seed,
            ..FaultPlan::none()
        };
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for item in spec.split(',') {
            let item = item.trim();
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault spec item '{item}' is not key=value"))?;
            match key {
                "flip" => {
                    let eps: f64 = value
                        .parse()
                        .map_err(|_| format!("bad flip probability '{value}'"))?;
                    if !(0.0..=1.0).contains(&eps) {
                        return Err(format!("flip probability {eps} outside [0, 1]"));
                    }
                    plan.flip_prob = eps;
                }
                "crash" => {
                    let (frac_s, round_s) = match value.split_once('@') {
                        Some((f, r)) => (f, Some(r)),
                        None => (value, None),
                    };
                    let frac: f64 = frac_s
                        .parse()
                        .map_err(|_| format!("bad crash fraction '{frac_s}'"))?;
                    if !(0.0..=1.0).contains(&frac) {
                        return Err(format!("crash fraction {frac} outside [0, 1]"));
                    }
                    plan.crash_fraction = frac;
                    plan.crash_round = match round_s {
                        Some(r) => r.parse().map_err(|_| format!("bad crash round '{r}'"))?,
                        None => 0,
                    };
                }
                "lag" => {
                    plan.stale_lag = value
                        .parse()
                        .map_err(|_| format!("bad billboard lag '{value}'"))?;
                }
                "budget" => {
                    let b: u64 = value
                        .parse()
                        .map_err(|_| format!("bad probe budget '{value}'"))?;
                    plan.probe_budget = Some(b);
                }
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("bad fault seed '{value}'"))?;
                }
                other => {
                    return Err(format!(
                        "unknown fault key '{other}' (flip|crash|lag|budget|seed)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// One-line human summary for CLI/report output.
    pub fn describe(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.flip_prob > 0.0 {
            parts.push(format!("flip={}", self.flip_prob));
        }
        if self.crash_fraction > 0.0 {
            parts.push(format!(
                "crash={}@{}",
                self.crash_fraction, self.crash_round
            ));
        }
        if self.stale_lag > 0 {
            parts.push(format!("lag={}", self.stale_lag));
        }
        if let Some(b) = self.probe_budget {
            parts.push(format!("budget={b}"));
        }
        parts.join(",")
    }
}

/// A [`FaultPlan`] compiled against a concrete population: the crash
/// set is materialized, the flip threshold precomputed, and per-player
/// fault tallies allocated. Owned by the engine; all queries are pure
/// in `(plan, player, object, count)`.
pub struct FaultState {
    plan: FaultPlan,
    /// Per-player crash threshold on the paid-probe counter (`None` =
    /// not in the crash set).
    crash_at: Vec<Option<u64>>,
    /// Flip iff `derive(seed, FAULT_FLIP, p ‖ j) < flip_threshold`
    /// (0 ⇒ never; scaled so the hit rate is `flip_prob`).
    flip_threshold: u64,
    /// Paid probes whose answer was corrupted, per player.
    flipped: Vec<AtomicU64>,
    /// Probe attempts denied (crash/budget), per player. Denials are
    /// free — they never touch the paid counters.
    denied: Vec<AtomicU64>,
}

impl FaultState {
    /// Compile `plan` for an `n`-player population. The crash set is
    /// the `⌊crash_fraction · n⌋` players with the smallest
    /// `derive(seed, FAULT_CRASH, p)` — an order-independent, exact-
    /// count choice (ties are broken by player id, and 64-bit collisions
    /// are negligible anyway).
    pub(crate) fn compile(plan: FaultPlan, n: usize) -> FaultState {
        let crash_count = (plan.crash_fraction.clamp(0.0, 1.0) * n as f64).floor() as usize;
        let mut crash_at = vec![None; n];
        if crash_count > 0 {
            let mut ranked: Vec<(u64, PlayerId)> = (0..n)
                .map(|p| (derive(plan.seed, tags::FAULT_CRASH, p as u64), p))
                .collect();
            ranked.sort_unstable();
            for &(_, p) in ranked.iter().take(crash_count.min(n)) {
                crash_at[p] = Some(plan.crash_round);
            }
        }
        let flip_threshold = if plan.flip_prob <= 0.0 {
            0
        } else {
            // `u64::MAX as f64` rounds to 2^64; the cast back saturates,
            // so flip_prob = 1.0 maps to u64::MAX (flips all but one in
            // 2^64 pairs — indistinguishable in practice).
            (plan.flip_prob.clamp(0.0, 1.0) * u64::MAX as f64) as u64
        };
        FaultState {
            plan,
            crash_at,
            flip_threshold,
            flipped: (0..n).map(|_| AtomicU64::new(0)).collect(),
            denied: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Is the `(player, object)` grade corrupted under this plan?
    /// Pure — independent of whether the pair was ever probed.
    pub fn is_flipped(&self, p: PlayerId, j: ObjectId) -> bool {
        self.flip_threshold != 0
            && derive(
                self.plan.seed,
                tags::FAULT_FLIP,
                ((p as u64) << 32) ^ j as u64,
            ) < self.flip_threshold
    }

    /// Would a probe by `p` be denied when its paid counter reads
    /// `count`? (Crash-set player past its crash round, or budget
    /// exhausted.)
    pub fn denies(&self, p: PlayerId, count: u64) -> bool {
        self.crash_at[p].is_some_and(|r| count >= r)
            || self.plan.probe_budget.is_some_and(|b| count >= b)
    }

    /// Freeze a [`LivenessEpoch`] from a vector of per-player paid
    /// counts (one entry per player, captured by the engine at a phase
    /// barrier). Deadness is the same `denies` predicate probe-time
    /// denial uses, evaluated against the frozen counts.
    pub(crate) fn freeze(&self, paid: Vec<u64>) -> LivenessEpoch {
        let dead = paid
            .iter()
            .enumerate()
            .map(|(p, &count)| self.denies(p, count))
            .collect();
        LivenessEpoch {
            frozen: Some(FrozenEpoch {
                dead,
                paid,
                stale_lag: self.plan.stale_lag,
            }),
        }
    }

    /// Players in the crash set (sorted by id). They are *scheduled* to
    /// crash; whether each has already crashed depends on its probe
    /// count.
    pub fn crash_set(&self) -> Vec<PlayerId> {
        self.crash_at
            .iter()
            .enumerate()
            .filter_map(|(p, c)| c.map(|_| p))
            .collect()
    }

    pub(crate) fn note_flip(&self, p: PlayerId) {
        self.flipped[p].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_denial(&self, p: PlayerId) {
        self.denied[p].fetch_add(1, Ordering::Relaxed);
    }

    /// Paid probes whose answer was corrupted, per player.
    pub fn flipped_of(&self, p: PlayerId) -> u64 {
        self.flipped[p].load(Ordering::Relaxed)
    }

    /// Denied (free) probe attempts, per player.
    pub fn denied_of(&self, p: PlayerId) -> u64 {
        self.denied[p].load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for FaultState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultState")
            .field("plan", &self.plan)
            .field("crash_set", &self.crash_set().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        let mut p = FaultPlan::none();
        p.flip_prob = 0.01;
        assert!(!p.is_none());
        let mut q = FaultPlan::none();
        q.probe_budget = Some(5);
        assert!(!q.is_none());
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let p = FaultPlan::parse("flip=0.05,crash=0.25@8,lag=2,budget=100", 7).unwrap();
        assert_eq!(p.flip_prob, 0.05);
        assert_eq!(p.crash_fraction, 0.25);
        assert_eq!(p.crash_round, 8);
        assert_eq!(p.stale_lag, 2);
        assert_eq!(p.probe_budget, Some(100));
        assert_eq!(p.seed, 7);
        assert_eq!(p.describe(), "flip=0.05,crash=0.25@8,lag=2,budget=100");

        assert!(FaultPlan::parse("none", 1).unwrap().is_none());
        assert!(FaultPlan::parse("", 1).unwrap().is_none());
        assert_eq!(FaultPlan::parse("crash=0.1", 1).unwrap().crash_round, 0);
        assert_eq!(FaultPlan::parse("seed=42", 1).unwrap().seed, 42);

        assert!(FaultPlan::parse("flip=2.0", 1).is_err());
        assert!(FaultPlan::parse("crash=-0.1", 1).is_err());
        assert!(FaultPlan::parse("bogus=1", 1).is_err());
        assert!(FaultPlan::parse("flip", 1).is_err());
        assert!(FaultPlan::parse("lag=x", 1).is_err());
    }

    #[test]
    fn crash_set_is_exact_and_deterministic() {
        let plan = FaultPlan {
            crash_fraction: 0.25,
            crash_round: 3,
            ..FaultPlan::none()
        };
        let a = FaultState::compile(plan.clone(), 64);
        let b = FaultState::compile(plan, 64);
        assert_eq!(a.crash_set(), b.crash_set());
        assert_eq!(a.crash_set().len(), 16);
        // A crashed player denies past its round, others never.
        let victim = a.crash_set()[0];
        assert!(!a.denies(victim, 2));
        assert!(a.denies(victim, 3));
        let alive = (0..64).find(|p| !a.crash_set().contains(p)).unwrap();
        assert!(!a.denies(alive, 1_000_000));
    }

    #[test]
    fn crash_set_scales_with_fraction() {
        for (frac, expect) in [(0.0, 0usize), (0.1, 6), (0.5, 32), (1.0, 64)] {
            let plan = FaultPlan {
                crash_fraction: frac,
                ..FaultPlan::none()
            };
            assert_eq!(FaultState::compile(plan, 64).crash_set().len(), expect);
        }
    }

    #[test]
    fn flip_rate_tracks_probability() {
        let plan = FaultPlan {
            seed: 99,
            flip_prob: 0.1,
            ..FaultPlan::none()
        };
        let st = FaultState::compile(plan, 4);
        let hits = (0..4)
            .flat_map(|p| (0..10_000).map(move |j| (p, j)))
            .filter(|&(p, j)| st.is_flipped(p, j))
            .count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.1).abs() < 0.01, "empirical flip rate {rate}");
        // Pure: same pair, same answer.
        assert_eq!(st.is_flipped(2, 17), st.is_flipped(2, 17));
        // Zero probability: never flips.
        let clean = FaultState::compile(FaultPlan::none(), 4);
        assert!((0..4).all(|p| (0..1000).all(|j| !clean.is_flipped(p, j))));
    }

    #[test]
    fn frozen_epoch_is_immutable_and_matches_denies() {
        let plan = FaultPlan {
            crash_fraction: 0.25,
            crash_round: 3,
            stale_lag: 2,
            probe_budget: Some(10),
            ..FaultPlan::none()
        };
        let st = FaultState::compile(plan, 8);
        let victim = st.crash_set()[0];
        let paid: Vec<u64> = (0..8).map(|p| if p == victim { 3 } else { 1 }).collect();
        let epoch = st.freeze(paid);
        assert!(epoch.is_dead(victim));
        assert_eq!(epoch.paid(victim), 3);
        assert_eq!(epoch.stale_lag(), 2);
        let players: Vec<PlayerId> = (0..8).collect();
        let live = epoch.live_players(&players);
        assert_eq!(live.len(), 7);
        assert!(!live.contains(&victim));
        // The all-live epoch never reports anyone dead.
        let all = LivenessEpoch::all_live();
        assert!(players.iter().all(|&p| all.is_live(p)));
        assert_eq!(all.live_players(&players), players);
        assert_eq!(all.stale_lag(), 0);
    }

    #[test]
    fn budget_denies_at_cap() {
        let plan = FaultPlan {
            probe_budget: Some(5),
            ..FaultPlan::none()
        };
        let st = FaultState::compile(plan, 2);
        assert!(!st.denies(0, 4));
        assert!(st.denies(0, 5));
        assert!(st.denies(1, 9));
    }
}
