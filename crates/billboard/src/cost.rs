//! Probe-cost accounting.
//!
//! The paper's complexity measure is *rounds*: each round every player
//! probes at most one object, so a phase that charges player `p` a total
//! of `c_p` probes needs `max_p c_p` rounds. [`CostSnapshot`] captures
//! the per-player charges at an instant; subtracting two snapshots gives
//! a [`PhaseCost`] with the summary statistics every experiment table
//! reports.

use tmwia_model::matrix::PlayerId;

/// Per-player cumulative probe charges at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostSnapshot {
    per_player: Vec<u64>,
}

impl CostSnapshot {
    /// Wrap raw per-player counters.
    pub fn new(per_player: Vec<u64>) -> Self {
        CostSnapshot { per_player }
    }

    /// Raw per-player charges.
    pub fn per_player(&self) -> &[u64] {
        &self.per_player
    }

    /// Charges of one player.
    pub fn of(&self, p: PlayerId) -> u64 {
        self.per_player[p]
    }

    /// Cost of the phase between `self` (before) and `later` (after).
    ///
    /// # Panics
    /// Panics if the snapshots disagree on player count or any counter
    /// decreased (counters are monotone by construction).
    pub fn until(&self, later: &CostSnapshot) -> PhaseCost {
        assert_eq!(
            self.per_player.len(),
            later.per_player.len(),
            "snapshots from different engines"
        );
        let deltas: Vec<u64> = self
            .per_player
            .iter()
            .zip(&later.per_player)
            .map(|(&a, &b)| {
                assert!(b >= a, "probe counters must be monotone");
                b - a
            })
            .collect();
        PhaseCost { deltas }
    }
}

/// Probe charges of one algorithm phase, per player.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseCost {
    deltas: Vec<u64>,
}

impl PhaseCost {
    /// Per-player probe counts for the phase.
    pub fn per_player(&self) -> &[u64] {
        &self.deltas
    }

    /// Total probes across all players.
    pub fn total(&self) -> u64 {
        self.deltas.iter().sum()
    }

    /// Round complexity of the phase: the maximum per-player charge.
    pub fn rounds(&self) -> u64 {
        self.deltas.iter().copied().max().unwrap_or(0)
    }

    /// Mean probes per player.
    pub fn mean(&self) -> f64 {
        if self.deltas.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.deltas.len() as f64
        }
    }

    /// Maximum charge among a player subset (round complexity as
    /// experienced by, e.g., the planted community).
    pub fn rounds_of(&self, players: &[PlayerId]) -> u64 {
        players.iter().map(|&p| self.deltas[p]).max().unwrap_or(0)
    }
}

/// Fault-attributed extension of the cost model: per-player *paid*
/// probes (the quantity [`CostSnapshot`] tracks), the subset of those
/// whose answers were corrupted by the active
/// [`crate::fault::FaultPlan`], and the *denied* attempts that cost
/// nothing. `paid − flipped` is the honest information a player
/// actually bought; `denied` measures how hard the algorithm knocked on
/// dead doors. Built by [`crate::ProbeEngine::ledger`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostLedger {
    paid: Vec<u64>,
    flipped: Vec<u64>,
    denied: Vec<u64>,
}

impl CostLedger {
    /// Assemble from per-player counters.
    ///
    /// # Panics
    /// Panics if the three vectors disagree on player count.
    pub fn new(paid: Vec<u64>, flipped: Vec<u64>, denied: Vec<u64>) -> Self {
        assert!(
            paid.len() == flipped.len() && paid.len() == denied.len(),
            "ledger columns must cover the same players"
        );
        CostLedger {
            paid,
            flipped,
            denied,
        }
    }

    /// Per-player paid probes.
    pub fn per_player(&self) -> &[u64] {
        &self.paid
    }

    /// Paid probes of one player.
    pub fn of(&self, p: PlayerId) -> u64 {
        self.paid[p]
    }

    /// Corrupted paid probes of one player.
    pub fn flipped_of(&self, p: PlayerId) -> u64 {
        self.flipped[p]
    }

    /// Denied (free) attempts of one player.
    pub fn denied_of(&self, p: PlayerId) -> u64 {
        self.denied[p]
    }

    /// Total paid probes — by construction `Σ_p paid(p)`, the same
    /// number [`crate::ProbeEngine::total_probes`] reports.
    pub fn total(&self) -> u64 {
        self.paid.iter().sum()
    }

    /// Total corrupted paid probes.
    pub fn flipped_total(&self) -> u64 {
        self.flipped.iter().sum()
    }

    /// Total denied attempts.
    pub fn denied_total(&self) -> u64 {
        self.denied.iter().sum()
    }

    /// Check the ledger's internal invariants: every player's flipped
    /// count is bounded by its paid count, and (when `paid_cap` is
    /// given, e.g. `m` under memoized probing, or the fault plan's
    /// budget) no player exceeds the cap. Returns the first violation
    /// as a message.
    pub fn verify(&self, paid_cap: Option<u64>) -> Result<(), String> {
        for p in 0..self.paid.len() {
            if self.flipped[p] > self.paid[p] {
                return Err(format!(
                    "player {p}: flipped {} > paid {}",
                    self.flipped[p], self.paid[p]
                ));
            }
            if let Some(cap) = paid_cap {
                if self.paid[p] > cap {
                    return Err(format!("player {p}: paid {} > cap {cap}", self.paid[p]));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn until_computes_deltas() {
        let a = CostSnapshot::new(vec![1, 2, 3]);
        let b = CostSnapshot::new(vec![4, 2, 10]);
        let phase = a.until(&b);
        assert_eq!(phase.per_player(), &[3, 0, 7]);
        assert_eq!(phase.total(), 10);
        assert_eq!(phase.rounds(), 7);
        assert!((phase.mean() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rounds_of_subset() {
        let phase = CostSnapshot::new(vec![0, 0, 0]).until(&CostSnapshot::new(vec![5, 9, 1]));
        assert_eq!(phase.rounds_of(&[0, 2]), 5);
        assert_eq!(phase.rounds_of(&[1]), 9);
        assert_eq!(phase.rounds_of(&[]), 0);
    }

    #[test]
    fn of_indexes_players() {
        let s = CostSnapshot::new(vec![7, 8]);
        assert_eq!(s.of(0), 7);
        assert_eq!(s.of(1), 8);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn decreasing_counters_panic() {
        CostSnapshot::new(vec![5]).until(&CostSnapshot::new(vec![4]));
    }

    #[test]
    #[should_panic(expected = "different engines")]
    fn mismatched_lengths_panic() {
        CostSnapshot::new(vec![1]).until(&CostSnapshot::new(vec![1, 2]));
    }

    #[test]
    fn empty_phase_is_zero() {
        let phase = CostSnapshot::new(vec![]).until(&CostSnapshot::new(vec![]));
        assert_eq!(phase.total(), 0);
        assert_eq!(phase.rounds(), 0);
        assert_eq!(phase.mean(), 0.0);
    }

    #[test]
    fn ledger_totals_and_accessors() {
        let l = CostLedger::new(vec![5, 0, 9], vec![1, 0, 3], vec![0, 7, 2]);
        assert_eq!(l.total(), 14);
        assert_eq!(l.flipped_total(), 4);
        assert_eq!(l.denied_total(), 9);
        assert_eq!(l.of(2), 9);
        assert_eq!(l.flipped_of(2), 3);
        assert_eq!(l.denied_of(1), 7);
        assert_eq!(l.per_player(), &[5, 0, 9]);
        assert_eq!(l.total(), l.per_player().iter().sum::<u64>());
    }

    #[test]
    fn ledger_verify_catches_violations() {
        let ok = CostLedger::new(vec![5, 9], vec![1, 9], vec![0, 0]);
        assert!(ok.verify(None).is_ok());
        assert!(ok.verify(Some(9)).is_ok());
        assert!(ok.verify(Some(8)).is_err());
        let bad = CostLedger::new(vec![2], vec![3], vec![0]);
        assert!(bad.verify(None).is_err());
    }

    #[test]
    #[should_panic(expected = "same players")]
    fn ledger_mismatched_columns_panic() {
        CostLedger::new(vec![1], vec![1, 2], vec![0]);
    }
}
