//! Tunable algorithm constants.
//!
//! The paper states its constants asymptotically (`8c·ln n/α` base case,
//! `s ≥ 100·d^{3/2}` parts, `K = O(log n)` iterations, …). At laptop
//! scales the literal constants swamp `m`, so every constant is exposed
//! here with two presets:
//!
//! * [`Params::theory`] — the literal paper constants; used by the
//!   bound-verification tests, where instances are small and we check
//!   inequalities, not wall-clock.
//! * [`Params::practical`] — smaller factors that preserve the success
//!   probabilities empirically (validated by experiment E12); used by
//!   the benches so sweeps reach interesting `n`.
//!
//! Every experiment row records which preset produced it.

/// All tunable constants of the algorithm family.
#[derive(Clone, Debug, PartialEq)]
pub struct Params {
    /// Zero Radius base case: recurse only while
    /// `min(|P|, |O|) ≥ base_case_factor · ln(n_global) / α`
    /// (paper: `8c·ln n / α`, Fig. 2 step 1).
    pub base_case_factor: f64,
    /// Zero Radius vote threshold: a vector is a candidate if at least
    /// `vote_fraction · α · |P''|` players of the other half output it
    /// (paper: α/2 fraction, Fig. 2 step 4).
    pub vote_fraction: f64,
    /// Small Radius partition count: `s = partition_factor · D^{3/2}`
    /// (paper: `100·d^{3/2}` makes Lemma 4.1's failure prob < 1/2).
    pub partition_factor: f64,
    /// Small Radius iteration count: `K = confidence_factor · log₂ n`
    /// (paper: `K = O(log n)`).
    pub confidence_factor: f64,
    /// Small Radius runs Zero Radius with `α/zr_alpha_div` and keeps
    /// vectors output by `≥ α·|P|/zr_alpha_div` players (paper: 5).
    pub zr_alpha_div: f64,
    /// Small Radius final Select bound multiplier: candidates from the
    /// K iterations are selected with bound `final_bound_mult · D`
    /// (paper: 5, per Lemma 4.3).
    pub final_bound_mult: usize,
    /// Large Radius group count: `L = group_factor · D / ln n`
    /// (paper: `cD/log n`, Fig. 5 step 1).
    pub group_factor: f64,
    /// Large Radius per-group distance bound: Small Radius inside Large
    /// Radius runs with `D_ℓ = small_d_factor · ln n` (Lemma 5.5: the
    /// projected community diameter is O(log n)).
    pub small_d_factor: f64,
    /// Large Radius wants `|P_ℓ| ≥ part_players_factor · ln n / α`
    /// players per group; player multiplicity is derived from this.
    pub part_players_factor: f64,
    /// Coalesce merge threshold multiplier: merge vectors with
    /// `d̃ ≤ coalesce_merge_mult · D` (paper: 5, Fig. 6 step 4).
    pub coalesce_merge_mult: usize,
    /// RSelect samples `rselect_sample_factor · ln n` coordinates per
    /// duel (paper: `c·log n`, Fig. 7 step 1b).
    pub rselect_sample_factor: f64,
    /// RSelect majority threshold for declaring a loser (paper: 2/3).
    pub rselect_majority: f64,
    /// When `true`, Select re-pays for coordinates probed in earlier
    /// phases (the strict determinism semantics of the remark after
    /// Theorem 3.2). Default `false`: revealed grades are public.
    pub fresh_probes: bool,
}

impl Params {
    /// Literal paper constants (with `c = 1` where the paper leaves `c`
    /// unspecified).
    pub fn theory() -> Self {
        Params {
            base_case_factor: 8.0,
            vote_fraction: 0.5,
            partition_factor: 100.0,
            confidence_factor: 1.0,
            zr_alpha_div: 5.0,
            final_bound_mult: 5,
            group_factor: 1.0,
            small_d_factor: 4.0,
            part_players_factor: 4.0,
            rselect_sample_factor: 8.0,
            rselect_majority: 2.0 / 3.0,
            coalesce_merge_mult: 5,
            fresh_probes: false,
        }
    }

    /// Bench-scale constants: same structure, smaller factors. The
    /// guarantees still hold empirically at these settings (experiment
    /// E12 sweeps them); failure probabilities rise from `n^{-Ω(1)}` to
    /// "rare at trial counts we run".
    pub fn practical() -> Self {
        Params {
            base_case_factor: 2.0,
            vote_fraction: 0.5,
            partition_factor: 2.0,
            confidence_factor: 0.5,
            zr_alpha_div: 5.0,
            final_bound_mult: 5,
            group_factor: 0.5,
            small_d_factor: 2.0,
            part_players_factor: 2.0,
            rselect_sample_factor: 4.0,
            rselect_majority: 2.0 / 3.0,
            coalesce_merge_mult: 5,
            fresh_probes: false,
        }
    }

    /// Zero Radius recursion threshold for a global population `n` and
    /// community fraction `alpha` (Fig. 2 step 1). Never below 2, so the
    /// recursion always terminates by halving.
    pub fn base_case_threshold(&self, n_global: usize, alpha: f64) -> usize {
        let ln_n = (n_global.max(2) as f64).ln();
        ((self.base_case_factor * ln_n / alpha).ceil() as usize).max(2)
    }

    /// Small Radius partition count `s` for distance bound `d`
    /// (Fig. 4 step 1a). At least 1.
    pub fn partition_count(&self, d: usize) -> usize {
        ((self.partition_factor * (d as f64).powf(1.5)).ceil() as usize).max(1)
    }

    /// Small Radius iteration count `K` for population `n`.
    pub fn confidence_k(&self, n_global: usize) -> usize {
        ((self.confidence_factor * (n_global.max(2) as f64).log2()).ceil() as usize).max(1)
    }

    /// Large Radius group count `L` for distance bound `d` and
    /// population `n` (Fig. 5 step 1). At least 1; at most `d` so each
    /// group's projected diameter target stays ≥ 1.
    pub fn group_count(&self, d: usize, n_global: usize) -> usize {
        let ln_n = (n_global.max(2) as f64).ln();
        (((self.group_factor * d as f64 / ln_n).floor() as usize).max(1)).min(d.max(1))
    }

    /// Large Radius per-group distance bound (the `O(log n)` of
    /// Lemma 5.5).
    pub fn group_distance_bound(&self, n_global: usize) -> usize {
        ((self.small_d_factor * (n_global.max(2) as f64).ln()).ceil() as usize).max(1)
    }

    /// Desired players per Large Radius group.
    pub fn players_per_group(&self, n_global: usize, alpha: f64) -> usize {
        ((self.part_players_factor * (n_global.max(2) as f64).ln() / alpha).ceil() as usize).max(1)
    }

    /// RSelect duel sample size.
    pub fn rselect_samples(&self, n_global: usize) -> usize {
        ((self.rselect_sample_factor * (n_global.max(2) as f64).ln()).ceil() as usize).max(1)
    }

    /// The D threshold separating Small Radius from Large Radius in the
    /// main dispatch (Fig. 1: "D = O(log n)"). We use the same
    /// `small_d_factor · ln n` scale as the per-group bound.
    pub fn small_large_threshold(&self, n_global: usize) -> usize {
        self.group_distance_bound(n_global)
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::practical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_scale_not_structure() {
        let t = Params::theory();
        let p = Params::practical();
        assert!(t.base_case_factor > p.base_case_factor);
        assert!(t.partition_factor > p.partition_factor);
        assert_eq!(t.final_bound_mult, p.final_bound_mult);
        assert_eq!(t.coalesce_merge_mult, p.coalesce_merge_mult);
    }

    #[test]
    fn thresholds_scale_as_documented() {
        let t = Params::theory();
        // 8·ln(1024)/0.5 ≈ 110.9 → 111
        assert_eq!(t.base_case_threshold(1024, 0.5), 111);
        // Monotone in n, anti-monotone in alpha.
        assert!(t.base_case_threshold(4096, 0.5) > t.base_case_threshold(1024, 0.5));
        assert!(t.base_case_threshold(1024, 0.25) > t.base_case_threshold(1024, 0.5));
        // Never below 2 even for absurd inputs.
        assert!(t.base_case_threshold(2, 1.0) >= 2);
    }

    #[test]
    fn partition_count_matches_d_three_halves() {
        let t = Params::theory();
        assert_eq!(t.partition_count(0), 1);
        assert_eq!(t.partition_count(1), 100);
        assert_eq!(t.partition_count(4), 800);
        let p = Params::practical();
        assert_eq!(p.partition_count(4), 16);
    }

    #[test]
    fn group_count_clamped() {
        let p = Params::practical();
        // Small d: one group.
        assert_eq!(p.group_count(2, 1024), 1);
        // Large d: about 0.5·d/ln n groups.
        let l = p.group_count(1000, 1024);
        assert!((60..=80).contains(&l), "L = {l}");
        // Never exceeds d.
        assert!(p.group_count(3, 2) <= 3);
    }

    #[test]
    fn confidence_k_grows_with_n() {
        let t = Params::theory();
        assert_eq!(t.confidence_k(1024), 10);
        assert!(t.confidence_k(2) >= 1);
    }

    #[test]
    fn default_is_practical() {
        assert_eq!(Params::default(), Params::practical());
    }
}
