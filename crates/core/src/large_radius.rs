//! Algorithm **Large Radius** — communities of large diameter
//! (paper Figure 5, Theorem 5.4, Lemma 5.5).
//!
//! For `D ≫ log n`, Small Radius is too expensive (its cost is
//! polynomial in `D`). Large Radius reduces to the cheap regimes:
//!
//! 1. chop the object set into `L = Θ(D / log n)` random groups `O_ℓ` —
//!    by Lemma 5.5, typical players project to diameter `O(log n)` on
//!    each group — and assign each player to a few groups so every group
//!    has `Ω(log n / α)` players;
//! 2. each group's players run **Small Radius** on their group;
//! 3. everyone runs **Coalesce** on each group's posted outputs,
//!    producing `≤ O(1/α)` candidate vectors `B_ℓ` per group with a
//!    unique closest candidate for the community (Theorem 5.3);
//! 4. run **Zero Radius over virtual objects**: "object" `ℓ` has value
//!    domain `B_ℓ`-indices, and probing it means running Select (bounded
//!    by `O(log n)`) against the candidates on real coordinates. Typical
//!    players share one exact virtual vector, so Zero Radius's
//!    exact-agreement guarantee applies.
//!
//! Final error: `O(D/α)` per member (the `?` entries of the chosen
//! candidates, resolved to 0, dominate); probes per player
//! `O(log^{7/2} n / α²)` for `m = O(n)` (Theorem 5.4).

use crate::coalesce::coalesce_nonempty;
use crate::params::Params;
use crate::select::select_ternary;
use crate::zero_radius::{zero_radius, ObjectSpace};
use std::collections::BTreeMap;
use tmwia_billboard::{PlayerId, ProbeEngine};
use tmwia_model::matrix::ObjectId;
use tmwia_model::partition::{assign_with_multiplicity, uniform_parts};
use tmwia_model::rng::{derive, rng_for, tags};
use tmwia_model::{BitVec, TernaryVec};

/// Output: per player, a full-length (`m`) estimate vector.
pub type LrOutput = BTreeMap<PlayerId, BitVec>;

/// One object group with its Coalesce candidates: the "virtual object"
/// of step 4.
struct Group {
    /// Real objects in this group.
    objects: Vec<ObjectId>,
    /// Coalesce output `B_ℓ` (non-empty).
    candidates: Vec<TernaryVec>,
    /// Select distance bound used to "probe" this virtual object.
    bound: usize,
}

/// Virtual-object space over the groups: probing group `ℓ` runs Select
/// against `B_ℓ` on real coordinates and returns the winning candidate
/// index. Primitive probes are charged through the engine by Select
/// itself.
struct CandidateSpace<'a> {
    engine: &'a ProbeEngine,
    groups: &'a [Group],
    fresh: bool,
}

impl ObjectSpace for CandidateSpace<'_> {
    type Val = u32;

    fn num_objects(&self) -> usize {
        self.groups.len()
    }

    fn probe(&self, player: PlayerId, idx: usize) -> u32 {
        let g = &self.groups[idx];
        let handle = self.engine.player(player);
        select_ternary(&handle, &g.objects, &g.candidates, g.bound, self.fresh).winner as u32
    }

    fn begin_round(&self) -> tmwia_billboard::LivenessEpoch {
        self.engine.begin_round()
    }
}

/// Run Algorithm Large Radius over the full object set, assuming an
/// `(alpha, d)`-typical player subset among `players`.
pub fn large_radius(
    engine: &ProbeEngine,
    players: &[PlayerId],
    alpha: f64,
    d: usize,
    params: &Params,
    seed: u64,
) -> LrOutput {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
    let n_global = engine.n();
    let m = engine.m();
    if players.is_empty() {
        return BTreeMap::new();
    }

    // Step 1: random object groups and player assignment.
    let l = params.group_count(d, n_global);
    let all_objects: Vec<ObjectId> = (0..m).collect();
    let mut obj_rng = rng_for(seed, tags::LARGE_RADIUS_OBJ, 0);
    let object_groups = uniform_parts(&all_objects, l, &mut obj_rng);

    let per_group = params.players_per_group(n_global, alpha);
    let copies = ((per_group * l).div_ceil(players.len())).max(1);
    let mut ply_rng = rng_for(seed, tags::LARGE_RADIUS_PLY, 0);
    let player_groups = assign_with_multiplicity(players, l, copies, &mut ply_rng);

    // The community's projected diameter per group (Lemma 5.5):
    // λ = min(D, O(log n)).
    let lambda = d.min(params.group_distance_bound(n_global)).max(1);
    // Small Radius promises 5λ per member; two members are then within
    // (2·5 + 1)·λ of each other, which is the Coalesce distance scale.
    let coalesce_d = (2 * params.final_bound_mult + 1) * lambda;
    // Select bound for virtual probes: the community's true vector is
    // within 2·coalesce_d of its candidate (Theorem 5.3).
    let virt_bound = 2 * coalesce_d;

    // Steps 2–3 per group, groups in parallel. Player assignments
    // overlap across groups (multiplicity ≥ 1), so under a fault plan
    // the groups run as ordered phases (see `par_map_phased`) to keep
    // each player's cumulative probe sequence — and hence its crash
    // point — schedule-independent; fault-free runs stay parallel.
    let groups: Vec<Group> = tmwia_billboard::engine::par_map_phased(engine, l, |ell| {
        let objs = &object_groups[ell];
        let plys = &player_groups[ell];
        if objs.is_empty() {
            return Group {
                objects: Vec::new(),
                candidates: vec![TernaryVec::unknowns(0)],
                bound: 0,
            };
        }
        // Step 2: Small Radius with frequency parameter α/2 and
        // confidence K = O(log n) (the K comes from `params`).
        let sr = crate::small_radius::small_radius(
            engine,
            plys,
            objs,
            alpha / 2.0,
            lambda,
            params,
            n_global,
            derive(seed, tags::LARGE_RADIUS_OBJ, 1 + ell as u64),
        );
        // Step 3: Coalesce the posted outputs (player order for
        // determinism). Dead players never posted, so only live
        // players' vectors reach Coalesce — their junk would otherwise
        // spawn spurious candidate clusters. Liveness is frozen *after*
        // this group's Small Radius: under the phased fault schedule
        // every player is quiescent here, so the epoch is exact and
        // schedule-independent. Everyone is live in a fault-free run,
        // so the inputs are unchanged there.
        let epoch = engine.begin_round();
        let inputs: Vec<BitVec> = plys
            .iter()
            .filter(|&&p| epoch.is_live(p))
            .map(|p| sr[p].clone())
            .collect();
        let candidates =
            coalesce_nonempty(&inputs, coalesce_d, alpha / 4.0, params.coalesce_merge_mult);
        let candidates = if candidates.is_empty() {
            vec![TernaryVec::unknowns(objs.len())]
        } else {
            candidates
        };
        Group {
            objects: objs.clone(),
            candidates,
            bound: virt_bound,
        }
    });

    // Step 4: Zero Radius over the virtual objects, with all players.
    let space = CandidateSpace {
        engine,
        groups: &groups,
        fresh: params.fresh_probes,
    };
    let virt_objects: Vec<usize> = (0..l).collect();
    let zr = zero_radius(
        &space,
        players,
        &virt_objects,
        alpha,
        params,
        n_global,
        derive(seed, tags::LARGE_RADIUS_OBJ, u64::MAX),
    );

    // Stitch: each player's chosen candidate per group, `?` → 0 (§5:
    // "don't care entries … may be set to 0").
    zr.into_iter()
        .map(|(p, picks)| {
            let mut w = BitVec::zeros(m);
            for (ell, &idx) in picks.iter().enumerate() {
                let g = &groups[ell];
                if g.objects.is_empty() {
                    continue;
                }
                let cand = &g.candidates[idx as usize];
                w.scatter_from(&cand.resolve_zero(), &g.objects);
            }
            (p, w)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmwia_model::generators::planted_community;
    use tmwia_model::metrics::CommunityReport;

    fn run(
        n: usize,
        m: usize,
        k: usize,
        d: usize,
        seed: u64,
    ) -> (ProbeEngine, Vec<PlayerId>, LrOutput) {
        let inst = planted_community(n, m, k, d, seed);
        let community = inst.community().to_vec();
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..n).collect();
        let out = large_radius(
            &engine,
            &players,
            k as f64 / n as f64,
            d,
            &Params::practical(),
            seed,
        );
        (engine, community, out)
    }

    #[test]
    fn community_stretch_bounded() {
        // D well above log n: the Large Radius regime. Error must be
        // O(D/α) — with α = 1/2 we allow a generous constant.
        let d = 48;
        let (engine, community, out) = run(128, 128, 64, d, 31);
        let outputs: Vec<BitVec> = (0..128).map(|p| out[&p].clone()).collect();
        let report = CommunityReport::evaluate(engine.truth(), &outputs, &community);
        assert!(
            report.discrepancy <= 12 * d,
            "discrepancy {} ≫ D = {d}",
            report.discrepancy
        );
    }

    #[test]
    fn outputs_cover_all_players_full_length() {
        let (_, _, out) = run(64, 64, 32, 32, 32);
        assert_eq!(out.len(), 64);
        assert!(out.values().all(|w| w.len() == 64));
    }

    #[test]
    fn typical_players_agree_exactly_after_step4() {
        // Zero Radius over virtual objects makes all typical players
        // output the *same* vector w.h.p. — a distinctive Large Radius
        // property (§5: "any two typical players will have the same
        // output vector").
        let (_, community, out) = run(128, 128, 96, 40, 33);
        let first = &out[&community[0]];
        let agree = community.iter().filter(|&&p| &out[&p] == first).count();
        assert!(
            agree * 10 >= community.len() * 9,
            "only {agree}/{} community members agree",
            community.len()
        );
    }

    #[test]
    fn empty_players_ok() {
        let inst = planted_community(8, 8, 4, 2, 1);
        let engine = ProbeEngine::new(inst.truth);
        let out = large_radius(&engine, &[], 0.5, 4, &Params::practical(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(64, 64, 32, 24, 34).2;
        let b = run(64, 64, 32, 24, 34).2;
        assert_eq!(a, b);
    }

    #[test]
    fn small_d_degenerates_gracefully() {
        // Large Radius called below its intended regime (d < log n) must
        // still produce bounded-error outputs (L clamps to 1 group).
        let (engine, community, out) = run(64, 64, 32, 4, 35);
        for &p in &community {
            let err = out[&p].hamming(engine.truth().row(p));
            assert!(err <= 40, "player {p} error {err}");
        }
    }
}
