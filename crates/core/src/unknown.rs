//! Coping with unknown `D` and unknown `α` — paper §6.
//!
//! **Unknown `D`** ([`reconstruct_unknown_d`]): run the main algorithm
//! for `D = 0` and `D = 2^i`, `i = 0 … ⌈log₂ m⌉`, in parallel; every
//! player then runs **RSelect** over the `O(log m)` resulting candidate
//! vectors and outputs the apparent-closest. Cost grows by a `log m`
//! factor and quality degrades by a constant factor relative to
//! Theorem 5.4 — exactly the gap between Theorems 1.1 and 5.4.
//!
//! **Unknown `α`** ([`anytime`]): repeated doubling over `α = 2^{-j}`.
//! After each phase the player RSelects between its previous best and
//! the new phase output, giving an *anytime algorithm*: at any stopping
//! time the current output is close to the best achievable for the
//! budget spent so far.

use crate::main_algorithm::reconstruct_known;
use crate::params::Params;
use crate::rselect::rselect_bits;
use std::collections::BTreeMap;
use tmwia_billboard::{par_map_players, PlayerId, ProbeEngine};
use tmwia_model::matrix::ObjectId;
use tmwia_model::rng::derive;
use tmwia_model::BitVec;

/// Domain tag for seed derivation in this module.
const TAG: u64 = 0x554E4B; // "UNK"

/// The geometric `D` grid of §6: `0, 1, 2, 4, …` up to (and covering)
/// `m`.
pub fn d_grid(m: usize) -> Vec<usize> {
    let mut grid = vec![0usize];
    let mut d = 1usize;
    while d < m {
        grid.push(d);
        d *= 2;
    }
    grid.push(m.max(1));
    grid
}

/// Result of an unknown-`D` reconstruction.
#[derive(Clone, Debug)]
pub struct UnknownDResult {
    /// Final per-player outputs after RSelect.
    pub outputs: BTreeMap<PlayerId, BitVec>,
    /// The `D` grid that was run.
    pub grid: Vec<usize>,
    /// Index (into `grid`) of the version each player adopted.
    pub chosen_version: BTreeMap<PlayerId, usize>,
}

/// Run the §6 unknown-`D` algorithm: all `O(log m)` versions of the
/// main algorithm, then a per-player RSelect across their outputs.
pub fn reconstruct_unknown_d(
    engine: &ProbeEngine,
    players: &[PlayerId],
    alpha: f64,
    params: &Params,
    seed: u64,
) -> UnknownDResult {
    let m = engine.m();
    let grid = d_grid(m);
    // Versions are probe-independent (results depend only on the hidden
    // truth); run them in sequence — probe caching means union cost, so
    // ordering does not change any player's total charge.
    let versions: Vec<BTreeMap<PlayerId, BitVec>> = grid
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            reconstruct_known(
                engine,
                players,
                alpha,
                d,
                params,
                derive(seed, TAG, i as u64),
            )
            .outputs
        })
        .collect();

    let objects: Vec<ObjectId> = (0..m).collect();
    let n = engine.n();
    let picks = par_map_players(players, |p| {
        let cands: Vec<BitVec> = versions.iter().map(|v| v[&p].clone()).collect();
        let handle = engine.player(p);
        let r = rselect_bits(
            &handle,
            &objects,
            &cands,
            params,
            n,
            derive(seed, TAG, 0x1000 + p as u64),
        );
        (r.winner, cands[r.winner].clone())
    });

    let mut outputs = BTreeMap::new();
    let mut chosen_version = BTreeMap::new();
    for (&p, (winner, w)) in players.iter().zip(picks) {
        outputs.insert(p, w);
        chosen_version.insert(p, winner);
    }
    UnknownDResult {
        outputs,
        grid,
        chosen_version,
    }
}

/// One phase of the anytime algorithm.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// The `α = 2^{-j}` this phase assumed.
    pub alpha: f64,
    /// Cumulative round complexity (max per-player probes) after the
    /// phase.
    pub rounds_after: u64,
    /// Each player's best-so-far output after the phase.
    pub outputs: BTreeMap<PlayerId, BitVec>,
}

/// Full trajectory of the anytime unknown-`α` algorithm.
#[derive(Clone, Debug)]
pub struct AnytimeReport {
    /// Phase-by-phase snapshots, `α` halving each time.
    pub phases: Vec<PhaseReport>,
}

impl AnytimeReport {
    /// The final outputs (last phase).
    pub fn final_outputs(&self) -> &BTreeMap<PlayerId, BitVec> {
        &self
            .phases
            .last()
            // lint:allow(panic-hygiene) anytime_impl asserts num_phases >= 1 and pushes one report per phase
            .expect("anytime runs at least one phase")
            .outputs
    }
}

/// Run the anytime unknown-`α` algorithm for `num_phases` doubling
/// phases (`α = 1/2, 1/4, …`), carrying each player's best output
/// forward by RSelect. The paper halts once `α < log n / n` ("the
/// player is better off probing alone"); we also clamp there.
pub fn anytime(
    engine: &ProbeEngine,
    players: &[PlayerId],
    num_phases: usize,
    params: &Params,
    seed: u64,
) -> AnytimeReport {
    anytime_impl(engine, players, num_phases, None, params, seed)
}

/// The α-doubling anytime algorithm with a *known* diameter bound `d`
/// (§6 treats the two unknowns independently; when `D` is known, each
/// phase runs the Figure 1 main algorithm directly instead of the
/// `log m`-version unknown-`D` wrapper, keeping phases cheap enough
/// that the anytime staircase is visible below the probe-cache cap).
pub fn anytime_known_d(
    engine: &ProbeEngine,
    players: &[PlayerId],
    d: usize,
    num_phases: usize,
    params: &Params,
    seed: u64,
) -> AnytimeReport {
    anytime_impl(engine, players, num_phases, Some(d), params, seed)
}

fn anytime_impl(
    engine: &ProbeEngine,
    players: &[PlayerId],
    num_phases: usize,
    known_d: Option<usize>,
    params: &Params,
    seed: u64,
) -> AnytimeReport {
    assert!(num_phases >= 1, "need at least one phase");
    let n = engine.n();
    let m = engine.m();
    let objects: Vec<ObjectId> = (0..m).collect();
    let alpha_floor = ((n.max(2) as f64).ln() / n as f64).min(1.0);

    let mut best: Option<BTreeMap<PlayerId, BitVec>> = None;
    let mut phases = Vec::with_capacity(num_phases);
    for j in 1..=num_phases {
        let alpha = (0.5f64.powi(j as i32)).max(alpha_floor);
        let phase_seed = derive(seed, TAG, 0x2000 + j as u64);
        let phase_outputs = match known_d {
            Some(d) => {
                crate::main_algorithm::reconstruct_known(
                    engine, players, alpha, d, params, phase_seed,
                )
                .outputs
            }
            None => reconstruct_unknown_d(engine, players, alpha, params, phase_seed).outputs,
        };
        let merged: BTreeMap<PlayerId, BitVec> = match &best {
            None => phase_outputs,
            Some(prev) => {
                let picks = par_map_players(players, |p| {
                    let cands = vec![prev[&p].clone(), phase_outputs[&p].clone()];
                    let handle = engine.player(p);
                    let r = rselect_bits(
                        &handle,
                        &objects,
                        &cands,
                        params,
                        n,
                        derive(seed, TAG, 0x3000 + (j as u64) * 0x10000 + p as u64),
                    );
                    cands[r.winner].clone()
                });
                players.iter().copied().zip(picks).collect()
            }
        };
        phases.push(PhaseReport {
            alpha,
            rounds_after: engine.max_probes(),
            outputs: merged.clone(),
        });
        best = Some(merged);
        if alpha <= alpha_floor {
            break;
        }
    }
    AnytimeReport { phases }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmwia_model::generators::{nested_communities, planted_community};
    use tmwia_model::metrics::discrepancy;

    #[test]
    fn d_grid_covers_and_doubles() {
        assert_eq!(d_grid(1), vec![0, 1]);
        assert_eq!(d_grid(8), vec![0, 1, 2, 4, 8]);
        let g = d_grid(100);
        assert_eq!(g, vec![0, 1, 2, 4, 8, 16, 32, 64, 100]);
    }

    #[test]
    fn unknown_d_matches_known_d_quality() {
        // Community of diameter 6 — unknown-D must land within a
        // constant factor of the known-D guarantee (5D), allowing the
        // §6 constant-factor loss.
        let d = 6;
        let inst = planted_community(96, 96, 48, d, 41);
        let community = inst.community().to_vec();
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..96).collect();
        let res = reconstruct_unknown_d(&engine, &players, 0.5, &Params::practical(), 41);
        let outputs: Vec<BitVec> = (0..96).map(|p| res.outputs[&p].clone()).collect();
        let delta = discrepancy(engine.truth(), &outputs, &community);
        assert!(delta <= 5 * 3 * d, "discrepancy {delta} > 15·D");
        assert_eq!(res.grid, d_grid(96));
    }

    #[test]
    fn unknown_d_exact_community_reconstructs_exactly_often() {
        // With D = 0 communities the D = 0 version is exact; RSelect
        // must not be fooled into a worse version.
        let inst = planted_community(96, 96, 48, 0, 43);
        let community = inst.community().to_vec();
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..96).collect();
        let res = reconstruct_unknown_d(&engine, &players, 0.5, &Params::practical(), 43);
        let exact = community
            .iter()
            .filter(|&&p| &res.outputs[&p] == engine.truth().row(p))
            .count();
        assert!(
            exact * 10 >= community.len() * 8,
            "only {exact}/{} exact",
            community.len()
        );
    }

    #[test]
    fn anytime_quality_improves_or_holds_per_phase() {
        // Nested communities: a loose half and a tight quarter. As α
        // halves, the tight community's members should not get worse.
        let inst = nested_communities(128, 128, &[(64, 24), (32, 8)], 45);
        let tight = inst.communities[1].clone();
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..128).collect();
        let report = anytime(&engine, &players, 3, &Params::practical(), 45);
        assert!(!report.phases.is_empty());
        let errs: Vec<usize> = report
            .phases
            .iter()
            .map(|ph| {
                let outputs: Vec<BitVec> = (0..128).map(|p| ph.outputs[&p].clone()).collect();
                discrepancy(engine.truth(), &outputs, &tight)
            })
            .collect();
        // Allow small regressions from RSelect sampling noise, but the
        // final phase must be at least as good as twice the first.
        assert!(
            *errs.last().unwrap() <= (2 * errs[0]).max(40),
            "errors did not improve: {errs:?}"
        );
        // Rounds are monotone across phases.
        for w in report.phases.windows(2) {
            assert!(w[0].rounds_after <= w[1].rounds_after);
        }
    }

    #[test]
    fn anytime_stops_at_alpha_floor() {
        let inst = planted_community(16, 16, 8, 0, 47);
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..16).collect();
        // 50 requested phases, but α floor = ln(16)/16 ≈ 0.17 stops it
        // after three halvings.
        let report = anytime(&engine, &players, 50, &Params::practical(), 47);
        assert!(report.phases.len() <= 4, "{} phases", report.phases.len());
        let _ = report.final_outputs();
    }

    #[test]
    fn anytime_known_d_staircase_is_sub_saturated() {
        // Two disjoint exact clusters of sizes n/2 and n/4: with known
        // D = 0 each phase costs O(log n/α), so the α = 1/4 cluster is
        // served only at phase 2, and total cost stays ≪ m.
        use tmwia_model::generators::adversarial_clusters;
        let n = 128;
        // adversarial_clusters gives equal sizes; take 2 clusters and
        // treat the first as the majority: sizes 64/64 — instead build
        // a 3-cluster soup so the largest is < n/2 only at phase 2.
        let inst = adversarial_clusters(n, n, 4, 0, 51);
        let engine = ProbeEngine::new(inst.truth.clone());
        let players: Vec<PlayerId> = (0..n).collect();
        let report = anytime_known_d(&engine, &players, 0, 3, &Params::practical(), 51);
        assert!(report.phases.len() >= 2);
        // Sub-saturated: below the cache cap m (at this tiny n the
        // α = 1/8 phase alone costs ~2·ln n·8 ≈ 78, so "≪ m" only
        // emerges at larger n — E10 shows 164 ≪ 512).
        assert!(
            engine.max_probes() < n as u64,
            "anytime_known_d saturated: {}",
            engine.max_probes()
        );
        // Quarter-size clusters exact by the final phase.
        let last = report.final_outputs();
        for c in &inst.communities {
            for &p in c {
                assert_eq!(&last[&p], inst.truth.row(p), "player {p}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = planted_community(64, 64, 32, 4, 49);
        let mk = || {
            let engine = ProbeEngine::new(inst.truth.clone());
            let players: Vec<PlayerId> = (0..64).collect();
            reconstruct_unknown_d(&engine, &players, 0.5, &Params::practical(), 7).outputs
        };
        assert_eq!(mk(), mk());
    }
}
