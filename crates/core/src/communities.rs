//! Subcommunity discovery from billboard outputs (§1.1).
//!
//! "In fact, our algorithm can continuously reconstruct all such
//! subcommunities in parallel, refining clusterings on-the-fly, as time
//! goes on and probing budget is increasing."
//!
//! Once players have posted output vectors (from any reconstruction
//! phase), the *implied community structure* is public information:
//! clustering the posted vectors at a distance scale `D` reveals which
//! players currently appear to share taste at that scale, and running
//! the clustering at a ladder of scales produces the refinement
//! hierarchy the paper describes. No probing is involved — this is pure
//! billboard post-processing, so every player computes the identical
//! structure (like Coalesce).
//!
//! Clustering at one scale is the ball-cover greedy of Coalesce step 2
//! applied to players instead of vectors; the hierarchy nests because a
//! ball of radius `D` is contained in the same center's ball of radius
//! `D' > D` — we additionally assign each player to the *first* cluster
//! whose representative is within the scale, which keeps memberships
//! deterministic.

use std::collections::BTreeMap;
use tmwia_billboard::PlayerId;
use tmwia_model::kernel::iter_set_bits;
use tmwia_model::{BitVec, DistanceKernel};

/// One discovered community at a given scale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscoveredCommunity {
    /// The player whose posted vector seeded the cluster.
    pub representative: PlayerId,
    /// Members (sorted), including the representative.
    pub members: Vec<PlayerId>,
}

/// The communities implied by posted outputs at one distance scale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// The scale `D` used.
    pub scale: usize,
    /// Clusters, largest first (ties: smaller representative id).
    pub communities: Vec<DiscoveredCommunity>,
}

impl Clustering {
    /// The community containing `p`, if any.
    pub fn community_of(&self, p: PlayerId) -> Option<&DiscoveredCommunity> {
        self.communities.iter().find(|c| c.members.contains(&p))
    }
}

/// Cluster posted output vectors at distance scale `d`, keeping only
/// clusters with at least `min_size` members. Greedy ball cover:
/// repeatedly take the (lexicographically first vector of the) player
/// with the densest remaining ball, claim everyone within `d`.
///
/// ```
/// use std::collections::BTreeMap;
/// use tmwia_core::discover_communities;
/// use tmwia_model::BitVec;
///
/// let mut outputs = BTreeMap::new();
/// outputs.insert(0usize, BitVec::from_bools(&[true, true, false, false]));
/// outputs.insert(1, BitVec::from_bools(&[true, true, false, true]));
/// outputs.insert(2, BitVec::from_bools(&[false, false, true, true]));
/// let c = discover_communities(&outputs, 1, 2);
/// assert_eq!(c.communities.len(), 1);          // {0, 1}; 2 is dust
/// assert_eq!(c.communities[0].members, vec![0, 1]);
/// ```
pub fn discover_communities(
    outputs: &BTreeMap<PlayerId, BitVec>,
    d: usize,
    min_size: usize,
) -> Clustering {
    // Deterministic order: sort players by (vector, id).
    let mut players: Vec<PlayerId> = outputs.keys().copied().collect();
    players.sort_by(|&a, &b| outputs[&a].cmp(&outputs[&b]).then(a.cmp(&b)));

    // Radius-`d` ball membership over the sorted positions, computed
    // once by the blocked kernel; the greedy loop below then works
    // entirely in word-parallel mask space (ball size within the
    // unclaimed set = popcount(mask ∩ unclaimed)).
    let vectors: Vec<&BitVec> = players.iter().map(|p| &outputs[p]).collect();
    let masks = DistanceKernel::from_refs(&vectors).bounded_masks(d);

    let n = players.len();
    let mut unclaimed = BitVec::ones(n);
    let mut remaining = n;
    let mut communities: Vec<DiscoveredCommunity> = Vec::new();
    while remaining > 0 {
        // Densest ball among unclaimed; ties to the earliest in the
        // deterministic order (strict `>` keeps the first maximum).
        let mut seed_pos = usize::MAX;
        let mut ball_size = 0usize;
        for (pos, mask) in masks.iter().enumerate() {
            if !unclaimed.get(pos) {
                continue;
            }
            let ball = mask.and_count(&unclaimed);
            if ball > ball_size {
                ball_size = ball;
                seed_pos = pos;
            }
        }
        if ball_size < min_size {
            break; // everything left is dust
        }
        let members: Vec<PlayerId> = {
            let mut ms: Vec<PlayerId> = iter_set_bits(&masks[seed_pos])
                .filter(|&pos| unclaimed.get(pos))
                .map(|pos| players[pos])
                .collect();
            ms.sort_unstable();
            ms
        };
        remaining -= ball_size;
        unclaimed.subtract(&masks[seed_pos]);
        communities.push(DiscoveredCommunity {
            representative: players[seed_pos],
            members,
        });
    }
    communities.sort_by(|a, b| {
        b.members
            .len()
            .cmp(&a.members.len())
            .then_with(|| a.representative.cmp(&b.representative))
    });
    Clustering {
        scale: d,
        communities,
    }
}

/// Run [`discover_communities`] at a ladder of scales (ascending),
/// producing the paper's on-the-fly refinement hierarchy: small scales
/// give tight subcommunities, large scales merge them.
pub fn community_hierarchy(
    outputs: &BTreeMap<PlayerId, BitVec>,
    scales: &[usize],
    min_size: usize,
) -> Vec<Clustering> {
    scales
        .iter()
        .map(|&d| discover_communities(outputs, d, min_size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmwia_model::generators::at_distance;
    use tmwia_model::rng::{rng_for, tags};

    /// Outputs with two planted clusters (radius r around two far
    /// centers) plus isolated noise players.
    fn two_cluster_outputs(
        m: usize,
        k: usize,
        r: usize,
        noise: usize,
        seed: u64,
    ) -> BTreeMap<PlayerId, BitVec> {
        let mut rng = rng_for(seed, tags::TRIAL, 7);
        let c1 = BitVec::random(m, &mut rng);
        let c2 = BitVec::random(m, &mut rng);
        let mut out = BTreeMap::new();
        for p in 0..k {
            out.insert(p, at_distance(&c1, r, &mut rng));
        }
        for p in k..2 * k {
            out.insert(p, at_distance(&c2, r, &mut rng));
        }
        for p in 2 * k..2 * k + noise {
            out.insert(p, BitVec::random(m, &mut rng));
        }
        out
    }

    #[test]
    fn finds_the_two_planted_clusters() {
        let out = two_cluster_outputs(256, 10, 2, 5, 1);
        let clustering = discover_communities(&out, 4, 3);
        assert_eq!(clustering.communities.len(), 2);
        for c in &clustering.communities {
            assert_eq!(c.members.len(), 10);
            // Members are one full planted block.
            let first_block = c.members.iter().all(|&p| p < 10);
            let second_block = c.members.iter().all(|&p| (10..20).contains(&p));
            assert!(first_block || second_block, "mixed cluster: {c:?}");
        }
    }

    #[test]
    fn min_size_filters_dust() {
        let out = two_cluster_outputs(256, 10, 2, 8, 2);
        let strict = discover_communities(&out, 4, 11);
        assert!(strict.communities.is_empty());
        let loose = discover_communities(&out, 4, 1);
        // Every player lands somewhere at min_size 1.
        let covered: usize = loose.communities.iter().map(|c| c.members.len()).sum();
        assert_eq!(covered, 28);
    }

    #[test]
    fn hierarchy_refines_with_scale() {
        // Nested structure: radius-1 subclusters inside a radius-20
        // supercluster.
        let mut rng = rng_for(3, tags::TRIAL, 8);
        let center = BitVec::random(512, &mut rng);
        let sub1 = at_distance(&center, 10, &mut rng);
        let sub2 = at_distance(&center, 10, &mut rng);
        let mut out = BTreeMap::new();
        for p in 0..8 {
            out.insert(p, at_distance(&sub1, 1, &mut rng));
        }
        for p in 8..16 {
            out.insert(p, at_distance(&sub2, 1, &mut rng));
        }
        let ladder = community_hierarchy(&out, &[3, 60], 2);
        assert_eq!(
            ladder[0].communities.len(),
            2,
            "tight scale: two subcommunities"
        );
        assert_eq!(
            ladder[1].communities.len(),
            1,
            "loose scale: one supercommunity"
        );
        assert_eq!(ladder[1].communities[0].members.len(), 16);
    }

    #[test]
    fn community_of_lookup() {
        let out = two_cluster_outputs(128, 5, 1, 0, 4);
        let clustering = discover_communities(&out, 2, 2);
        let c = clustering.community_of(0).expect("player 0 clustered");
        assert!(c.members.contains(&0));
        assert!(clustering.community_of(999).is_none());
    }

    #[test]
    fn deterministic_regardless_of_hashmap_order() {
        let out = two_cluster_outputs(128, 6, 1, 3, 5);
        let a = discover_communities(&out, 2, 2);
        // Rebuild the map in a different insertion order.
        let mut pairs: Vec<_> = out.iter().map(|(&p, v)| (p, v.clone())).collect();
        pairs.reverse();
        let out2: BTreeMap<PlayerId, BitVec> = pairs.into_iter().collect();
        let b = discover_communities(&out2, 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_outputs_empty_clustering() {
        let out: BTreeMap<PlayerId, BitVec> = BTreeMap::new();
        let c = discover_communities(&out, 4, 1);
        assert!(c.communities.is_empty());
    }
}
