//! The main algorithm for known `(α, D)` — paper Figure 1.
//!
//! Dispatch on the diameter bound:
//!
//! 1. `D = 0` → Algorithm Zero Radius on all players and objects;
//! 2. `D = O(log n)` → Algorithm Small Radius;
//! 3. otherwise → Algorithm Large Radius.
//!
//! §6 removes the known-`(α, D)` assumption; see [`crate::unknown`].

use crate::params::Params;
use crate::zero_radius::BinarySpace;
use std::collections::BTreeMap;
use tmwia_billboard::{PlayerId, ProbeEngine};
use tmwia_model::matrix::ObjectId;
use tmwia_model::BitVec;

/// Which branch of Figure 1 ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Branch {
    /// `D = 0`: exact-agreement community.
    ZeroRadius,
    /// `0 < D ≤ O(log n)`.
    SmallRadius,
    /// `D = Ω(log n)`.
    LargeRadius,
}

impl std::fmt::Display for Branch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Branch::ZeroRadius => write!(f, "zero-radius"),
            Branch::SmallRadius => write!(f, "small-radius"),
            Branch::LargeRadius => write!(f, "large-radius"),
        }
    }
}

/// Result of one known-parameter reconstruction.
#[derive(Clone, Debug)]
pub struct Reconstruction {
    /// Each player's full-length output vector `w(p)`.
    pub outputs: BTreeMap<PlayerId, BitVec>,
    /// Which Figure 1 branch was taken.
    pub branch: Branch,
}

/// Run the Figure 1 main algorithm with known community fraction
/// `alpha` and diameter bound `d`, over all objects.
///
/// ```
/// use tmwia_billboard::ProbeEngine;
/// use tmwia_core::{reconstruct_known, Branch, Params};
/// use tmwia_model::generators::planted_community;
///
/// let inst = planted_community(64, 64, 32, 0, 9);
/// let engine = ProbeEngine::new(inst.truth.clone());
/// let players: Vec<usize> = (0..64).collect();
/// let rec = reconstruct_known(&engine, &players, 0.5, 0, &Params::practical(), 9);
/// assert_eq!(rec.branch, Branch::ZeroRadius);
/// // Community members reconstruct exactly (Theorem 3.1)…
/// for &p in inst.community() {
///     assert_eq!(&rec.outputs[&p], inst.truth.row(p));
/// }
/// // …at a fraction of the solo cost m = 64.
/// assert!(engine.max_probes() < 64);
/// ```
pub fn reconstruct_known(
    engine: &ProbeEngine,
    players: &[PlayerId],
    alpha: f64,
    d: usize,
    params: &Params,
    seed: u64,
) -> Reconstruction {
    let n = engine.n();
    let m = engine.m();
    let objects: Vec<ObjectId> = (0..m).collect();

    if d == 0 {
        let zr = crate::zero_radius::zero_radius(
            &BinarySpace::new(engine),
            players,
            &objects,
            alpha,
            params,
            n,
            seed,
        );
        let outputs = zr
            .into_iter()
            .map(|(p, vals)| (p, BitVec::from_bools(&vals)))
            .collect();
        return Reconstruction {
            outputs,
            branch: Branch::ZeroRadius,
        };
    }

    if d <= params.small_large_threshold(n) {
        let outputs =
            crate::small_radius::small_radius(engine, players, &objects, alpha, d, params, n, seed);
        return Reconstruction {
            outputs,
            branch: Branch::SmallRadius,
        };
    }

    let outputs = crate::large_radius::large_radius(engine, players, alpha, d, params, seed);
    Reconstruction {
        outputs,
        branch: Branch::LargeRadius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmwia_model::generators::planted_community;
    use tmwia_model::metrics::discrepancy;

    fn run(
        n: usize,
        m: usize,
        k: usize,
        d: usize,
        seed: u64,
    ) -> (ProbeEngine, Vec<PlayerId>, Reconstruction) {
        let inst = planted_community(n, m, k, d, seed);
        let community = inst.community().to_vec();
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..n).collect();
        let rec = reconstruct_known(
            &engine,
            &players,
            k as f64 / n as f64,
            d,
            &Params::practical(),
            seed,
        );
        (engine, community, rec)
    }

    #[test]
    fn dispatch_matches_d_regimes() {
        // practical small/large threshold at n = 64: 2·ln 64 ≈ 9.
        let (_, _, rec0) = run(64, 64, 32, 0, 1);
        assert_eq!(rec0.branch, Branch::ZeroRadius);
        let (_, _, rec_small) = run(64, 64, 32, 6, 2);
        assert_eq!(rec_small.branch, Branch::SmallRadius);
        let (_, _, rec_large) = run(64, 64, 32, 30, 3);
        assert_eq!(rec_large.branch, Branch::LargeRadius);
    }

    #[test]
    fn error_bounded_in_every_branch() {
        for (d, factor, seed) in [(0usize, 0usize, 4u64), (6, 5, 5), (30, 12, 6)] {
            let (engine, community, rec) = run(128, 128, 64, d, seed);
            let outputs: Vec<BitVec> = (0..128).map(|p| rec.outputs[&p].clone()).collect();
            let delta = discrepancy(engine.truth(), &outputs, &community);
            assert!(
                delta <= factor * d,
                "d={d}: discrepancy {delta} > {}",
                factor * d
            );
        }
    }

    #[test]
    fn branch_display_names() {
        assert_eq!(Branch::ZeroRadius.to_string(), "zero-radius");
        assert_eq!(Branch::SmallRadius.to_string(), "small-radius");
        assert_eq!(Branch::LargeRadius.to_string(), "large-radius");
    }
}
