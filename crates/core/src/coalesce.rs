//! Algorithm **Coalesce** — probe-free clustering of output vectors
//! (paper Figure 6, Theorem 5.3).
//!
//! Input: a multiset `V` of `n` binary vectors, a distance parameter
//! `D`, a frequency parameter `α`. Output: at most `1/α` vectors over
//! `{0,1,?}` such that, whenever a subset `V_T ⊆ V` of size `≥ αn` has
//! pairwise distance `≤ D`, exactly one output vector is closest to all
//! of `V_T` — within `d̃ ≤ 2D` — and carries at most `5D/α` `?` entries.
//!
//! The algorithm greedily picks dense balls (step 2), then merges any
//! two representatives within `d̃ ≤ 5D` into their consensus, replacing
//! disagreements by `?` (step 4). No probing happens: every player runs
//! Coalesce on the same billboard-visible inputs and obtains the same
//! output.
//!
//! "Lexicographically first" is any fixed total order in the paper's
//! proof; we use `BitVec`'s word-wise order, which is deterministic and
//! cheap.

use tmwia_model::{BitVec, DistanceKernel, TernaryVec};

/// Run Coalesce on `vectors` with distance parameter `d`, frequency
/// `freq` (the paper's `α`) and merge threshold `merge_mult · d`
/// (paper: 5·D). Returns the output set `B`, sorted.
///
/// ```
/// use tmwia_core::coalesce;
/// use tmwia_model::BitVec;
///
/// // Ten copies of one taste profile plus two stray vectors.
/// let profile = BitVec::from_bools(&[true, false, true, true, false, false, true, false]);
/// let mut soup = vec![profile.clone(); 10];
/// soup.push(BitVec::zeros(8));
/// soup.push(BitVec::ones(8));
/// let b = coalesce(&soup, 1, 0.5, 5);
/// assert_eq!(b.len(), 1);                      // ≤ 1/α candidates
/// assert_eq!(b[0].dtilde_bits(&profile), 0);   // and it's the profile
/// ```
///
/// May return an *empty* set when no ball of radius `d` captures a
/// `freq` fraction — i.e. the precondition of Theorem 5.3 fails. Callers
/// that need a non-empty candidate list should use
/// [`coalesce_nonempty`].
pub fn coalesce(vectors: &[BitVec], d: usize, freq: f64, merge_mult: usize) -> Vec<TernaryVec> {
    assert!(freq > 0.0 && freq <= 1.0, "frequency must lie in (0, 1]");
    let n = vectors.len();
    if n == 0 {
        return Vec::new();
    }
    let min_ball = ((freq * n as f64).ceil() as usize).max(1);

    // Step 2: greedy dense-ball cover. Ball membership is precomputed
    // once as radius-`d` bitmasks over the input indices
    // (`DistanceKernel::bounded_masks`), so each greedy pass maintains
    // ball counts incrementally with word-parallel `popcount(mask ∩
    // live)` instead of recomputing every pairwise distance against a
    // frozen copy of V — the former worst-case O(n³) word-op loop.
    let kernel = DistanceKernel::new(vectors);
    let masks = kernel.bounded_masks(d);
    // Deterministic pick order: indices sorted by (vector, index).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| vectors[a].cmp(&vectors[b]).then(a.cmp(&b)));

    let mut live = BitVec::ones(n);
    let mut reps: Vec<BitVec> = Vec::new();
    loop {
        // Step 2a: drop every vector whose ball within the current V is
        // too sparse. The paper removes "all vectors v with |ball(v,D)|
        // < αn" as one simultaneous step, so all counts are taken
        // against the same `live` snapshot before any removal.
        let survivors: Vec<usize> = (0..n)
            .filter(|&i| live.get(i) && masks[i].and_count(&live) >= min_ball)
            .collect();
        live = BitVec::zeros(n);
        for &i in &survivors {
            live.set(i, true);
        }
        if survivors.is_empty() {
            break;
        }
        // Step 2b: lexicographically first surviving vector.
        let &pick = order
            .iter()
            .find(|&&i| live.get(i))
            // lint:allow(panic-hygiene) survivors is non-empty (checked above) and its bits were just set in live
            .expect("live is non-empty");
        // Step 2c: remove its ball.
        live.subtract(&masks[pick]);
        reps.push(vectors[pick].clone());
    }

    // Steps 3–4: merge near-duplicates into ?-consensus vectors.
    let mut b: Vec<TernaryVec> = reps.iter().map(TernaryVec::from_bits).collect();
    let merge_bound = merge_mult * d;
    loop {
        b.sort();
        let mut merged = None;
        'outer: for i in 0..b.len() {
            for j in (i + 1)..b.len() {
                if b[i].dtilde(&b[j]) <= merge_bound {
                    merged = Some((i, j));
                    break 'outer;
                }
            }
        }
        match merged {
            Some((i, j)) => {
                let star = b[i].merge(&b[j]);
                b.remove(j);
                b.remove(i);
                b.push(star);
            }
            None => break,
        }
    }
    b.sort();
    b
}

/// [`coalesce`], but guaranteed non-empty: if the faithful algorithm
/// returns nothing (precondition failed — no dense ball), fall back to
/// the single input vector with the largest ball (ties: lexicographic).
/// Large Radius step 3 needs *some* candidate per object group even in
/// subtrees where the community missed its concentration bound.
pub fn coalesce_nonempty(
    vectors: &[BitVec],
    d: usize,
    freq: f64,
    merge_mult: usize,
) -> Vec<TernaryVec> {
    let out = coalesce(vectors, d, freq, merge_mult);
    if !out.is_empty() || vectors.is_empty() {
        return out;
    }
    let counts = DistanceKernel::new(vectors).bounded_counts(d);
    let best = (0..vectors.len())
        .min_by(|&a, &b| {
            counts[b]
                .cmp(&counts[a]) // bigger ball wins
                .then_with(|| vectors[a].cmp(&vectors[b])) // then smaller vector
                .then_with(|| a.cmp(&b)) // then smaller index
        })
        .map(|i| vectors[i].clone())
        // lint:allow(panic-hygiene) the empty-vectors case returned early above
        .expect("vectors non-empty");
    vec![TernaryVec::from_bits(&best)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tmwia_model::generators::at_distance;

    /// Build a multiset: `k` vectors within distance `d` of a common
    /// center, plus `extra` uniform vectors.
    fn clustered(
        m: usize,
        k: usize,
        d: usize,
        extra: usize,
        seed: u64,
    ) -> (Vec<BitVec>, Vec<BitVec>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let center = BitVec::random(m, &mut rng);
        let cluster: Vec<BitVec> = (0..k)
            .map(|_| at_distance(&center, d / 2, &mut rng))
            .collect();
        let mut all = cluster.clone();
        all.extend((0..extra).map(|_| BitVec::random(m, &mut rng)));
        (all, cluster)
    }

    #[test]
    fn output_size_at_most_one_over_alpha() {
        let (vectors, _) = clustered(256, 20, 6, 20, 1);
        for freq in [0.1f64, 0.25, 0.5] {
            let out = coalesce(&vectors, 6, freq, 5);
            assert!(
                out.len() as f64 <= 1.0 / freq + 1e-9,
                "freq {freq}: {} candidates",
                out.len()
            );
        }
    }

    #[test]
    fn unique_closest_within_2d_of_cluster() {
        // Theorem 5.3: exactly one output vector closest to all of V_T,
        // at d̃ ≤ 2D.
        let (vectors, cluster) = clustered(256, 25, 8, 25, 2);
        let out = coalesce(&vectors, 8, 0.4, 5);
        assert!(!out.is_empty());
        let mut closest_set = std::collections::HashSet::new();
        for v in &cluster {
            let (best_idx, best_d) = out
                .iter()
                .enumerate()
                .map(|(i, u)| (i, u.dtilde_bits(v)))
                .min_by_key(|&(i, d)| (d, i))
                .unwrap();
            assert!(best_d <= 2 * 8, "member at d̃ {best_d} > 2D");
            closest_set.insert(best_idx);
        }
        assert_eq!(closest_set.len(), 1, "closest candidate not unique");
    }

    #[test]
    fn unknown_entries_bounded() {
        // ?-count ≤ 5D/α (Theorem 5.3's last claim).
        let (vectors, _) = clustered(512, 30, 10, 30, 3);
        let freq = 0.3;
        let out = coalesce(&vectors, 10, freq, 5);
        let bound = (5.0 * 10.0 / freq).ceil() as usize;
        for u in &out {
            assert!(
                u.count_unknown() <= bound,
                "{} ? entries > {bound}",
                u.count_unknown()
            );
        }
    }

    #[test]
    fn merged_outputs_are_pairwise_far() {
        // Step 4's stopping condition: any two distinct outputs have
        // d̃ > 5D.
        let (vectors, _) = clustered(256, 15, 4, 40, 4);
        let out = coalesce(&vectors, 4, 0.15, 5);
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                assert!(out[i].dtilde(&out[j]) > 5 * 4);
            }
        }
    }

    #[test]
    fn empty_when_no_dense_ball() {
        // 30 uniform vectors on 256 coordinates: no radius-2 ball holds
        // half of them.
        let mut rng = StdRng::seed_from_u64(5);
        let vectors: Vec<BitVec> = (0..30).map(|_| BitVec::random(256, &mut rng)).collect();
        assert!(coalesce(&vectors, 2, 0.5, 5).is_empty());
    }

    #[test]
    fn nonempty_fallback_returns_densest() {
        let mut rng = StdRng::seed_from_u64(6);
        let vectors: Vec<BitVec> = (0..10).map(|_| BitVec::random(128, &mut rng)).collect();
        let out = coalesce_nonempty(&vectors, 1, 0.9, 5);
        assert_eq!(out.len(), 1);
        // The fallback is one of the inputs, fully concrete.
        assert_eq!(out[0].count_unknown(), 0);
        assert!(vectors.iter().any(|v| TernaryVec::from_bits(v) == out[0]));
    }

    #[test]
    fn identical_inputs_collapse_to_one_exact_candidate() {
        let v = BitVec::from_bools(&[true, false, true, true, false]);
        let vectors = vec![v.clone(); 12];
        let out = coalesce(&vectors, 0, 0.5, 5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], TernaryVec::from_bits(&v));
    }

    #[test]
    fn two_far_clusters_give_two_candidates() {
        let mut rng = StdRng::seed_from_u64(7);
        let c1 = BitVec::random(512, &mut rng);
        let c2 = BitVec::random(512, &mut rng); // ~256 away from c1
        let mut vectors: Vec<BitVec> = (0..10).map(|_| at_distance(&c1, 2, &mut rng)).collect();
        vectors.extend((0..10).map(|_| at_distance(&c2, 2, &mut rng)));
        let out = coalesce(&vectors, 4, 0.3, 5);
        assert_eq!(out.len(), 2);
        // One candidate near each center.
        let d1 = out.iter().map(|u| u.dtilde_bits(&c1)).min().unwrap();
        let d2 = out.iter().map(|u| u.dtilde_bits(&c2)).min().unwrap();
        assert!(d1 <= 8 && d2 <= 8);
    }

    #[test]
    fn near_clusters_merge_into_consensus() {
        // Two dense groups 3·D apart (≤ 5·D): step 4 must merge them,
        // starring the disagreement coordinates.
        let mut rng = StdRng::seed_from_u64(8);
        let c1 = BitVec::random(256, &mut rng);
        let c2 = at_distance(&c1, 12, &mut rng); // D = 4, 3·D = 12 ≤ 20
        let mut vectors = vec![c1.clone(); 10];
        vectors.extend(std::iter::repeat_n(c2.clone(), 10));
        let out = coalesce(&vectors, 4, 0.3, 5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count_unknown(), 12);
    }

    #[test]
    fn deterministic_and_order_insensitive() {
        let (mut vectors, _) = clustered(128, 12, 4, 12, 9);
        let a = coalesce(&vectors, 4, 0.25, 5);
        vectors.reverse();
        let b = coalesce(&vectors, 4, 0.25, 5);
        assert_eq!(a, b, "output must not depend on input order");
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(coalesce(&[], 3, 0.5, 5).is_empty());
        assert!(coalesce_nonempty(&[], 3, 0.5, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_panics() {
        coalesce(&[BitVec::zeros(4)], 1, 0.0, 5);
    }
}
