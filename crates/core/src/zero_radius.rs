//! Algorithm **Zero Radius** — exact-agreement communities
//! (paper Figure 2, Theorem 3.1; after Awerbuch–Azar–Lotker–Patt-Shamir–
//! Tuttle 2005).
//!
//! Setting: at least `α·n` players share *identical* value vectors.
//! The algorithm halves both the player set and the object set, recurses
//! on matched halves in parallel, and lets each half adopt the other
//! half's work by (a) reading the billboard for vectors that at least an
//! `α/2` fraction of the other half voted for and (b) running Select
//! with distance bound 0 to pick the candidate consistent with its own
//! probes. Theorem 3.1: w.h.p. every member of the identical community
//! outputs the exact common vector after `O(log n / α)` probes.
//!
//! The algorithm is generic over the value domain ([`ObjectSpace`]):
//! "objects" may be primitive objects with boolean grades, or — in Large
//! Radius step 4 — whole object subsets whose "grade" is an index into a
//! candidate set, probed by running Select over real objects.

use crate::params::Params;
use crate::select::select_values;
use crate::value::Value;
use std::collections::BTreeMap;
use tmwia_billboard::{par_map_players, Billboard, LivenessEpoch, PlayerId, ProbeEngine};
use tmwia_model::partition::random_halves;
use tmwia_model::rng::{rng_for, tags};

/// A probe-able universe of (possibly virtual) objects with values in
/// `Self::Val`. Implementations must charge the probe engine for every
/// primitive probe they spend.
pub trait ObjectSpace: Sync {
    /// Value domain of this space.
    type Val: Value;
    /// Number of objects (indexed `0..num_objects()`).
    fn num_objects(&self) -> usize;
    /// Reveal the value of object `idx` for `player`, paying its cost.
    fn probe(&self, player: PlayerId, idx: usize) -> Self::Val;
    /// Freeze every player's liveness for one bulk-synchronous phase.
    /// Spaces backed by a fault-injected engine snapshot the paid-probe
    /// counters so crashed/throttled players read as dead — the
    /// algorithm keeps their junk vectors off the billboard. Call this
    /// only at phase barriers where the players being read are
    /// quiescent; the snapshot is then schedule-independent. The
    /// default (no fault layer) is the everyone-live constant, which
    /// leaves the fault-free path untouched.
    fn begin_round(&self) -> LivenessEpoch {
        LivenessEpoch::all_live()
    }
}

/// The primitive space: objects are real objects, values are grades,
/// probing costs exactly one unit through the engine.
pub struct BinarySpace<'a> {
    engine: &'a ProbeEngine,
}

impl<'a> BinarySpace<'a> {
    /// Wrap a probe engine.
    pub fn new(engine: &'a ProbeEngine) -> Self {
        BinarySpace { engine }
    }
}

impl ObjectSpace for BinarySpace<'_> {
    type Val = bool;

    fn num_objects(&self) -> usize {
        self.engine.m()
    }

    fn probe(&self, player: PlayerId, idx: usize) -> bool {
        self.engine.player(player).probe(idx)
    }

    fn begin_round(&self) -> LivenessEpoch {
        self.engine.begin_round()
    }
}

/// Output of Zero Radius: for each participating player, a value per
/// object, aligned with the `objects` slice passed in.
pub type ZrOutput<V> = BTreeMap<PlayerId, Vec<V>>;

/// Run Algorithm Zero Radius.
///
/// * `players`/`objects` — the sets `P` and `O` (object entries index
///   into `space`);
/// * `alpha` — the assumed community fraction (of `players`);
/// * `n_global` — the global population size `n` that the paper's
///   `log n` factors refer to (recursive calls shrink `|P|` but keep
///   probability targets phrased in `n`);
/// * `seed` — master randomness; the same seed reproduces the same run.
///
/// Returns each player's output vector over `objects` (same order).
pub fn zero_radius<S: ObjectSpace>(
    space: &S,
    players: &[PlayerId],
    objects: &[usize],
    alpha: f64,
    params: &Params,
    n_global: usize,
    seed: u64,
) -> ZrOutput<S::Val> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
    if players.is_empty() || objects.is_empty() {
        return players.iter().map(|&p| (p, Vec::new())).collect();
    }
    let board: Billboard<u64, Vec<S::Val>> = Billboard::new();
    recurse(
        space, players, objects, alpha, params, n_global, seed, 1, &board,
    )
}

/// One node of the recursion tree. `node` encodes the path (root = 1,
/// children `2·node` / `2·node + 1`) and namespaces both the billboard
/// keys and the split randomness.
#[allow(clippy::too_many_arguments)]
fn recurse<S: ObjectSpace>(
    space: &S,
    players: &[PlayerId],
    objects: &[usize],
    alpha: f64,
    params: &Params,
    n_global: usize,
    seed: u64,
    node: u64,
    board: &Billboard<u64, Vec<S::Val>>,
) -> ZrOutput<S::Val> {
    let threshold = params.base_case_threshold(n_global, alpha);

    // Step 1: base case — probe everything in O.
    if players.len().min(objects.len()) < threshold {
        let rows = par_map_players(players, |p| {
            objects
                .iter()
                .map(|&j| space.probe(p, j))
                .collect::<Vec<_>>()
        });
        let out: ZrOutput<S::Val> = players.iter().copied().zip(rows).collect();
        publish(space, board, node, &out, players);
        return out;
    }

    // Step 2: random halves of players and objects.
    let mut rng = rng_for(seed, tags::ZERO_RADIUS_SPLIT, node);
    let (p1, p2) = random_halves(players, &mut rng);
    let (o1, o2) = random_halves(objects, &mut rng);

    // Step 3: recurse on matched halves, in parallel.
    let (out1, out2) = rayon::join(
        || {
            recurse(
                space,
                &p1,
                &o1,
                alpha,
                params,
                n_global,
                seed,
                2 * node,
                board,
            )
        },
        || {
            recurse(
                space,
                &p2,
                &o2,
                alpha,
                params,
                n_global,
                seed,
                2 * node + 1,
                board,
            )
        },
    );

    // Step 4: each half adopts the other half's objects by scanning the
    // billboard for popular vectors and running Select with bound 0.
    let cands_for_p1 = popular_candidates(board, 2 * node + 1, p2.len(), alpha, params);
    let cands_for_p2 = popular_candidates(board, 2 * node, p1.len(), alpha, params);

    let adopted1 = adopt(space, &p1, &o2, &cands_for_p1);
    let adopted2 = adopt(space, &p2, &o1, &cands_for_p2);

    // Reassemble full vectors in this node's object order.
    let pos: BTreeMap<usize, usize> = objects.iter().enumerate().map(|(i, &j)| (j, i)).collect();
    let mut out: ZrOutput<S::Val> = BTreeMap::new();
    let assemble = |own: &ZrOutput<S::Val>,
                    own_objs: &[usize],
                    adopted: &ZrOutput<S::Val>,
                    adopted_objs: &[usize],
                    out: &mut ZrOutput<S::Val>| {
        for (&p, own_vals) in own {
            let mut row: Vec<Option<S::Val>> = vec![None; objects.len()];
            for (i, &j) in own_objs.iter().enumerate() {
                row[pos[&j]] = Some(own_vals[i].clone());
            }
            let ad = &adopted[&p];
            for (i, &j) in adopted_objs.iter().enumerate() {
                row[pos[&j]] = Some(ad[i].clone());
            }
            out.insert(
                p,
                row.into_iter()
                    // lint:allow(panic-hygiene) own_objs and adopted_objs partition this node's objects, so every slot is filled
                    .map(|v| v.expect("every object assigned"))
                    .collect(),
            );
        }
    };
    assemble(&out1, &o1, &adopted1, &o2, &mut out);
    assemble(&out2, &o2, &adopted2, &o1, &mut out);

    publish(space, board, node, &out, players);
    out
}

/// Post every *live* player's node output on the billboard, in player
/// order. Dead (crashed/throttled) players still compute a local
/// default vector — they just never publish it, so their junk cannot
/// dilute the vote tallies the surviving community relies on.
///
/// Liveness comes from a [`LivenessEpoch`] frozen here, at the node's
/// join point: every player in `players` has finished its probes for
/// this subtree (base case, or both children joined and adopted), so
/// the snapshot of their counters is exact regardless of what disjoint
/// sibling subtrees are doing concurrently. In a fault-free run the
/// epoch is the everyone-live constant and every player posts, exactly
/// as before.
fn publish<S: ObjectSpace>(
    space: &S,
    board: &Billboard<u64, Vec<S::Val>>,
    node: u64,
    out: &ZrOutput<S::Val>,
    players: &[PlayerId],
) {
    let epoch = space.begin_round();
    board.post_batch(
        players
            .iter()
            .filter(|&&p| epoch.is_live(p))
            .map(|&p| (node, p, out[&p].clone())),
    );
}

/// The "popular vectors" of step 4: vectors posted at `child` by at
/// least a `vote_fraction·α` fraction of that half. If the threshold
/// leaves nothing (possible when the community missed its expectation in
/// this subtree), fall back to the `⌈2/α⌉` most-voted vectors so Select
/// always has a candidate — the paper's analysis makes this case
/// `n^{-Ω(1)}`-rare for typical players; the fallback keeps atypical
/// players well-defined.
///
/// The fallback cut is *tie-inclusive*: every vector with at least as
/// many votes as the `⌈2/α⌉`-th entry is kept. Truncating a tie group
/// lexicographically can drop the community's vector when a subtree
/// half holds a single community member (all posts tied at one vote) —
/// and because the losing half then adopts a wrong block which becomes
/// the *majority* post at every ancestor, that one lexicographic
/// coin-flip corrupts the entire community's output. With ties kept,
/// Select (bound 0) recovers the true vector whenever at least one
/// community member posted it, at the price of a longer candidate list
/// only in this already-rare branch.
///
/// Shared (`pub(crate)`) with the lockstep runtime so both executions
/// compute candidate sets identically.
pub(crate) fn popular_candidates<V: Value>(
    board: &Billboard<u64, Vec<V>>,
    child: u64,
    half_size: usize,
    alpha: f64,
    params: &Params,
) -> Vec<Vec<V>> {
    let tally = board.tally(&child);
    let min_votes = ((params.vote_fraction * alpha * half_size as f64).ceil() as usize).max(1);
    let popular: Vec<Vec<V>> = tally
        .iter()
        .filter(|&&(_, c)| c >= min_votes)
        .map(|(v, _)| v.clone())
        .collect();
    if !popular.is_empty() {
        return popular;
    }
    let cap = ((2.0 / alpha).ceil() as usize).max(1);
    let mut by_votes = tally;
    by_votes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let keep = by_votes.get(cap - 1).map_or(0, |&(_, c)| c);
    by_votes
        .into_iter()
        .filter(|&(_, c)| c >= keep)
        .map(|(v, _)| v)
        .collect()
}

/// Each player of `players` selects (bound 0) among `candidates` —
/// vectors over `objects` — probing real coordinates as needed.
fn adopt<S: ObjectSpace>(
    space: &S,
    players: &[PlayerId],
    objects: &[usize],
    candidates: &[Vec<S::Val>],
) -> ZrOutput<S::Val> {
    players
        .iter()
        .copied()
        .zip(par_map_players(players, |p| {
            if candidates.is_empty() {
                // No information posted at all (other half empty —
                // cannot happen above the base case, defensive only):
                // probe directly.
                return objects.iter().map(|&j| space.probe(p, j)).collect();
            }
            let r = select_values(candidates, |j| space.probe(p, objects[j]), 0);
            candidates[r.winner].clone()
        }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmwia_billboard::ProbeEngine;
    use tmwia_model::generators::{planted_community, uniform_noise};
    use tmwia_model::BitVec;

    fn run_planted(
        n: usize,
        m: usize,
        k: usize,
        seed: u64,
        params: &Params,
    ) -> (ProbeEngine, Vec<PlayerId>, ZrOutput<bool>) {
        let inst = planted_community(n, m, k, 0, seed);
        let community = inst.community().to_vec();
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..n).collect();
        let objects: Vec<usize> = (0..m).collect();
        let alpha = k as f64 / n as f64;
        let out = zero_radius(
            &BinarySpace::new(&engine),
            &players,
            &objects,
            alpha,
            params,
            n,
            seed,
        );
        (engine, community, out)
    }

    fn to_bits(vals: &[bool]) -> BitVec {
        BitVec::from_bools(vals)
    }

    #[test]
    fn community_members_output_exact_vector() {
        let (engine, community, out) = run_planted(128, 128, 64, 42, &Params::practical());
        for &p in &community {
            let w = to_bits(&out[&p]);
            assert_eq!(
                &w,
                engine.truth().row(p),
                "player {p} failed to reconstruct"
            );
        }
    }

    #[test]
    fn cost_is_sublinear_for_community_members() {
        // m = 512 objects; community members should pay ≪ m probes.
        let (engine, community, _) = run_planted(512, 512, 256, 7, &Params::practical());
        let max_cost = community
            .iter()
            .map(|&p| engine.probes_of(p))
            .max()
            .unwrap();
        assert!(
            max_cost < 300,
            "community round complexity {max_cost} not sublinear in m=512"
        );
        // And far below the solo cost m.
        assert!(max_cost < 512);
    }

    #[test]
    fn every_player_gets_a_full_output() {
        let (_, _, out) = run_planted(64, 64, 32, 3, &Params::practical());
        assert_eq!(out.len(), 64);
        assert!(out.values().all(|v| v.len() == 64));
    }

    #[test]
    fn base_case_probes_everything_exactly() {
        // Small sets drop straight into the base case: outputs are the
        // true vectors and each player pays |O|.
        let inst = uniform_noise(4, 16, 9);
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..4).collect();
        let objects: Vec<usize> = (0..16).collect();
        let out = zero_radius(
            &BinarySpace::new(&engine),
            &players,
            &objects,
            1.0,
            &Params::theory(),
            4,
            1,
        );
        for &p in &players {
            assert_eq!(&to_bits(&out[&p]), engine.truth().row(p));
            assert_eq!(engine.probes_of(p), 16);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_planted(64, 64, 32, 11, &Params::practical()).2;
        let b = run_planted(64, 64, 32, 11, &Params::practical()).2;
        assert_eq!(a, b);
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let inst = uniform_noise(2, 4, 1);
        let engine = ProbeEngine::new(inst.truth);
        let out = zero_radius(
            &BinarySpace::new(&engine),
            &[],
            &[0, 1],
            0.5,
            &Params::practical(),
            2,
            0,
        );
        assert!(out.is_empty());
        let out2 = zero_radius(
            &BinarySpace::new(&engine),
            &[0],
            &[],
            0.5,
            &Params::practical(),
            2,
            0,
        );
        assert_eq!(out2[&0], Vec::<bool>::new());
    }

    #[test]
    fn subset_of_objects_respects_alignment() {
        // Run on a strided object subset; outputs must align with it.
        let inst = planted_community(32, 64, 32, 0, 13);
        let engine = ProbeEngine::new(inst.truth.clone());
        let players: Vec<PlayerId> = (0..32).collect();
        let objects: Vec<usize> = (0..64).step_by(2).collect();
        let out = zero_radius(
            &BinarySpace::new(&engine),
            &players,
            &objects,
            1.0,
            &Params::practical(),
            32,
            5,
        );
        for &p in &players {
            for (i, &j) in objects.iter().enumerate() {
                assert_eq!(out[&p][i], inst.truth.value(p, j), "p={p} j={j}");
            }
        }
    }

    #[test]
    fn fallback_keeps_vote_ties_whole() {
        // 8 players post 8 distinct vectors — every tally count is 1,
        // so the α/2 threshold leaves nothing and the fallback path
        // runs. With α = 1/2 the cap is 4, but cutting there would
        // decide membership by vector order; the tie-inclusive cut must
        // return all 8.
        let board: Billboard<u64, Vec<bool>> = Billboard::new();
        board.post_batch((0..8).map(|p| (7u64, p, vec![p & 1 != 0, p & 2 != 0, p & 4 != 0])));
        let cands = popular_candidates(&board, 7, 8, 0.5, &Params::practical());
        assert_eq!(cands.len(), 8, "tied fallback candidates must all survive");
        // A genuine majority still short-circuits the fallback.
        let board2: Billboard<u64, Vec<bool>> = Billboard::new();
        board2.post_batch((0..8).map(|p| (7u64, p, vec![p == 7])));
        let cands2 = popular_candidates(&board2, 7, 8, 0.5, &Params::practical());
        assert_eq!(cands2, vec![vec![false]]);
    }

    #[test]
    fn lone_community_member_block_does_not_corrupt_the_run() {
        // Regression for the E1 whole-trial failures: under this exact
        // seed the recursion produces a base-case half holding a single
        // community member, so every post there ties at one vote. The
        // old lexicographically-truncated fallback dropped the true
        // vector, and the wrong adopted block then became the majority
        // post at every ancestor — all but one community member ended
        // with the same 5-bit-wrong output.
        let n = 512;
        let seed = tmwia_model::rng::derive(
            20060730 ^ ((n as u64) << 8) ^ 256,
            tmwia_model::rng::tags::TRIAL,
            0,
        );
        let inst = planted_community(n, n, 256, 0, seed);
        let community = inst.community().to_vec();
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..n).collect();
        let objects: Vec<usize> = (0..n).collect();
        let out = zero_radius(
            &BinarySpace::new(&engine),
            &players,
            &objects,
            0.5,
            &Params::practical(),
            n,
            seed,
        );
        for &p in &community {
            assert_eq!(
                &to_bits(&out[&p]),
                engine.truth().row(p),
                "player {p} corrupted"
            );
        }
    }

    #[test]
    fn generic_value_domain_u32() {
        // A virtual space where object j has the same u32 value for all
        // players in the community sense (everyone identical): Zero
        // Radius must reproduce it.
        struct ConstSpace {
            vals: Vec<u32>,
        }
        impl ObjectSpace for ConstSpace {
            type Val = u32;
            fn num_objects(&self) -> usize {
                self.vals.len()
            }
            fn probe(&self, _p: PlayerId, idx: usize) -> u32 {
                self.vals[idx]
            }
        }
        let space = ConstSpace {
            vals: (0..32).map(|j| (j * 7 % 5) as u32).collect(),
        };
        let players: Vec<PlayerId> = (0..32).collect();
        let objects: Vec<usize> = (0..32).collect();
        let out = zero_radius(&space, &players, &objects, 1.0, &Params::practical(), 32, 2);
        for p in 0..32 {
            assert_eq!(out[&p], space.vals);
        }
    }
}
