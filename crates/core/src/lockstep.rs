//! **Lockstep Zero Radius** — the paper's "distributed randomized
//! peer-to-peer algorithm" (abstract) executed literally: every player
//! is an independent state machine that, once per round, either probes
//! one object or idles, reading the billboard only between rounds.
//!
//! The orchestrated [`crate::zero_radius()`] computes the same algorithm
//! with global control flow. This module demonstrates (and tests) that
//! the orchestration is faithful: with the same master seed the
//! lockstep execution produces **bit-identical outputs and probe
//! charges**, because
//!
//! * the recursion tree is public randomness — every player derives the
//!   same halvings from `(seed, node)`;
//! * base-case leaves probe their objects in the same order;
//! * step 4's candidate sets come from the same vote-tally code
//!   (`zero_radius::popular_candidates`); and
//! * the incremental `SelectMachine` replays Figure 3's forward sweep
//!   one probe per round, matching [`crate::select::select_rows()`]
//!   decision-for-decision.
//!
//! The only new quantity is *wall-clock rounds*: players must wait
//! (idle) for the sibling half to finish posting before they can adopt,
//! so rounds = probes + barrier waits. The tree is balanced (random
//! halvings), so waits add only a small factor — measured by the tests.

use crate::params::Params;
use crate::zero_radius::popular_candidates;
use std::collections::BTreeMap;
use tmwia_billboard::{Billboard, PlayerId, ProbeEngine};
use tmwia_model::matrix::ObjectId;
use tmwia_model::partition::random_halves;
use tmwia_model::rng::{rng_for, tags};

/// One node of the (public) recursion tree.
#[derive(Debug, Clone)]
struct Node {
    id: u64,
    players: Vec<PlayerId>,
    objects: Vec<ObjectId>,
    /// Arena indices of the two children (`None` for leaves).
    children: Option<(usize, usize)>,
}

/// Build the recursion tree exactly as the orchestrated
/// `zero_radius::recurse` does (same seeds, same halving calls).
fn build_tree(
    players: &[PlayerId],
    objects: &[ObjectId],
    alpha: f64,
    params: &Params,
    n_global: usize,
    seed: u64,
) -> Vec<Node> {
    let threshold = params.base_case_threshold(n_global, alpha);
    let mut arena: Vec<Node> = Vec::new();
    // Iterative expansion, preserving the (node-id-seeded) rng calls.
    let mut stack = vec![(players.to_vec(), objects.to_vec(), 1u64)];
    let mut pending: Vec<(usize, u64)> = Vec::new(); // (arena idx, node id) to link
    while let Some((p, o, id)) = stack.pop() {
        let is_leaf = p.len().min(o.len()) < threshold;
        let idx = arena.len();
        arena.push(Node {
            id,
            players: p.clone(),
            objects: o.clone(),
            children: None,
        });
        pending.push((idx, id));
        if !is_leaf {
            let mut rng = rng_for(seed, tags::ZERO_RADIUS_SPLIT, id);
            let (p1, p2) = random_halves(&p, &mut rng);
            let (o1, o2) = random_halves(&o, &mut rng);
            stack.push((p2, o2, 2 * id + 1));
            stack.push((p1, o1, 2 * id));
        }
    }
    // Link children by id lookup.
    let by_id: BTreeMap<u64, usize> = arena.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    for node in &mut arena {
        if let (Some(&l), Some(&r)) = (by_id.get(&(2 * node.id)), by_id.get(&(2 * node.id + 1))) {
            node.children = Some((l, r));
        }
    }
    arena
}

/// Incremental Figure 3 Select with distance bound 0 over boolean
/// candidate vectors: one probe per `next_probe`/`observe` cycle.
/// Matches `select_rows` (all-`Some` rows, bound 0) exactly.
#[derive(Debug)]
pub(crate) struct SelectMachine {
    rows: Vec<Vec<bool>>,
    objects: Vec<ObjectId>,
    alive: Vec<bool>,
    alive_count: usize,
    /// Next coordinate the forward sweep will examine.
    cursor: usize,
    revealed: Vec<Option<bool>>,
}

impl SelectMachine {
    pub(crate) fn new(rows: Vec<Vec<bool>>, objects: Vec<ObjectId>) -> Self {
        let k = rows.len();
        assert!(k > 0, "Select needs at least one candidate");
        assert!(rows.iter().all(|r| r.len() == objects.len()));
        let len = objects.len();
        SelectMachine {
            rows,
            objects,
            alive: vec![true; k],
            alive_count: k,
            cursor: 0,
            revealed: vec![None; len],
        }
    }

    /// The object to probe this round, or `None` when the sweep is over.
    pub(crate) fn next_probe(&mut self) -> Option<ObjectId> {
        while self.cursor < self.objects.len() {
            if self.alive_count <= 1 {
                return None;
            }
            // Is the cursor coordinate in X(V) for the alive set?
            let j = self.cursor;
            let mut first: Option<bool> = None;
            let mut in_x = false;
            for (c, row) in self.rows.iter().enumerate() {
                if !self.alive[c] {
                    continue;
                }
                match first {
                    None => first = Some(row[j]),
                    Some(v) if v != row[j] => {
                        in_x = true;
                        break;
                    }
                    _ => {}
                }
            }
            if in_x {
                return Some(self.objects[j]);
            }
            self.cursor += 1;
        }
        None
    }

    /// Deliver the probe result for the cursor coordinate.
    pub(crate) fn observe(&mut self, value: bool) {
        let j = self.cursor;
        self.revealed[j] = Some(value);
        for c in 0..self.rows.len() {
            if self.alive[c] && self.rows[c][j] != value {
                // Bound 0: a single disagreement evicts.
                self.alive[c] = false;
                self.alive_count -= 1;
            }
        }
        self.cursor += 1;
    }

    /// The winning candidate index, per Figure 3 step 2 (with the same
    /// tie-breaks as `select_rows`).
    pub(crate) fn winner(&self) -> usize {
        let pool: Vec<usize> = if self.alive_count > 0 {
            (0..self.rows.len()).filter(|&c| self.alive[c]).collect()
        } else {
            (0..self.rows.len()).collect()
        };
        let score = |c: usize| -> (usize, usize) {
            let mut dist = 0usize;
            let mut agree = 0usize;
            for (cv, rv) in self.rows[c].iter().zip(&self.revealed) {
                if let Some(b) = rv {
                    if cv == b {
                        agree += 1;
                    } else {
                        dist += 1;
                    }
                }
            }
            (dist, agree)
        };
        pool.into_iter()
            .min_by(|&a, &b| {
                let (da, aa) = score(a);
                let (db, ab) = score(b);
                da.cmp(&db)
                    .then_with(|| ab.cmp(&aa))
                    .then_with(|| self.rows[a].cmp(&self.rows[b]))
                    .then_with(|| a.cmp(&b))
            })
            // lint:allow(panic-hygiene) pool falls back to all candidate indices, and rows is non-empty by construction
            .expect("non-empty pool")
    }
}

/// Per-player execution state.
enum Phase {
    /// Base case: probing the leaf's objects in order.
    Leaf { pos: usize },
    /// Waiting for the sibling at `path[level]` to finish posting.
    Waiting { level: usize },
    /// Running Select against the sibling's candidates.
    Selecting {
        level: usize,
        machine: SelectMachine,
    },
    /// All levels merged; final output posted.
    Done,
}

/// One level of a player's root-ward path.
struct PathLevel {
    /// Arena index of the parent node.
    parent: usize,
    /// Arena index of the sibling child (the half to adopt from).
    sibling: usize,
}

struct PlayerMachine {
    p: PlayerId,
    /// Arena index of this player's leaf.
    leaf: usize,
    /// Levels from the leaf's parent up to the root.
    path: Vec<PathLevel>,
    phase: Phase,
    /// Values learned so far, keyed by object.
    known: BTreeMap<ObjectId, bool>,
}

/// Result of a lockstep execution.
pub struct LockstepResult {
    /// Per-player outputs over the input `objects` order — identical to
    /// the orchestrated [`mod@crate::zero_radius`] run with the same seed.
    pub outputs: BTreeMap<PlayerId, Vec<bool>>,
    /// Wall-clock rounds (probes + barrier waits of the slowest player).
    pub rounds: u64,
}

/// Execute Zero Radius in lockstep.
///
/// Information-flow rules enforced by construction: a player reads the
/// vector billboard only between rounds; it probes at most one object
/// per round; posted node outputs are immutable.
pub fn lockstep_zero_radius(
    engine: &ProbeEngine,
    players: &[PlayerId],
    objects: &[ObjectId],
    alpha: f64,
    params: &Params,
    n_global: usize,
    seed: u64,
) -> LockstepResult {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
    if players.is_empty() || objects.is_empty() {
        return LockstepResult {
            outputs: players.iter().map(|&p| (p, Vec::new())).collect(),
            rounds: 0,
        };
    }

    let arena = build_tree(players, objects, alpha, params, n_global, seed);
    // Vector billboard: node id → posted outputs (in that node's object
    // order). Uses the same Billboard type as the orchestrated run so
    // tallies behave identically. Under a stale-read fault plan the
    // board hides posts for `stale_lag` epochs; the loop below advances
    // the epoch once per round. With lag 0 the epoch is irrelevant and
    // the board behaves exactly as before.
    let board: Billboard<u64, Vec<bool>> = Billboard::with_staleness(engine.stale_lag());

    // Locate each player's leaf and path.
    let mut machines: Vec<PlayerMachine> = players
        .iter()
        .map(|&p| {
            // Walk from the root following the child containing p.
            let mut idx = 0usize; // arena[0] is the root by construction
            debug_assert_eq!(arena[0].id, 1);
            let mut path_rev: Vec<PathLevel> = Vec::new();
            while let Some((l, r)) = arena[idx].children {
                let in_left = arena[l].players.contains(&p);
                let (mine, sib) = if in_left { (l, r) } else { (r, l) };
                path_rev.push(PathLevel {
                    parent: idx,
                    sibling: sib,
                });
                idx = mine;
            }
            path_rev.reverse(); // leaf-parent first, root last
            PlayerMachine {
                p,
                leaf: idx,
                path: path_rev,
                phase: Phase::Leaf { pos: 0 },
                known: BTreeMap::new(),
            }
        })
        .collect();

    let mut rounds = 0u64;
    // Generous stall guard; stale reads delay every barrier by up to
    // `lag` epochs, so scale the ceiling with the lag.
    let max_rounds = 64 * (objects.len() as u64 + 64) * (1 + engine.stale_lag());
    loop {
        // Round start: freeze liveness for the whole round (every
        // cross-player deadness read below resolves against this one
        // snapshot; a player probes at most once per round, so its own
        // counter cannot move between the snapshot and its step).
        let epoch = engine.begin_round();
        // Snapshot which nodes are fully posted. A node is also
        // complete when every player it is still missing is dead —
        // crashed players never post, and waiting for them would
        // deadlock the sibling half. (The dead-player scan only runs
        // under a fault plan, and only for nodes the fast path misses.)
        let complete: Vec<bool> = arena
            .iter()
            .map(|node| {
                if board.count(&node.id) >= node.players.len() {
                    return true;
                }
                engine.fault_state().is_some() && {
                    let posted: std::collections::BTreeSet<PlayerId> =
                        board.read(&node.id).into_iter().map(|(p, _)| p).collect();
                    node.players
                        .iter()
                        .all(|&p| posted.contains(&p) || epoch.is_dead(p))
                }
            })
            .collect();

        let mut any_active = false;
        let mut posts: Vec<(u64, PlayerId, Vec<bool>)> = Vec::new();
        for machine in &mut machines {
            let did = step(
                machine, &arena, &complete, &board, engine, &epoch, alpha, params, &mut posts,
            );
            any_active |= did;
        }
        // Publish after the round (players cannot see same-round posts;
        // the `complete` snapshot above already guarantees that for
        // reads, and posts are buffered here for writes). The epoch
        // advance is what makes this round's posts age toward
        // visibility under a stale-read plan; with lag 0 it is a no-op
        // for visibility.
        board.post_batch(posts);
        board.advance_epoch();

        if !any_active {
            break;
        }
        rounds += 1;
        assert!(
            rounds < max_rounds,
            "lockstep runtime stalled (barrier bug?)"
        );
    }

    // Outputs: each player's root vector, reordered to the caller's
    // `objects` order.
    let root = &arena[0];
    let pos: BTreeMap<ObjectId, usize> = objects.iter().enumerate().map(|(i, &j)| (j, i)).collect();
    let outputs = machines
        .iter()
        .map(|m| {
            let mut row = vec![false; objects.len()];
            for &j in &root.objects {
                // A machine that ascended to the root knows every
                // object; one that died mid-run (crash/budget faults)
                // is missing the rest — default those to false, the
                // same resolution a denied probe gets.
                row[pos[&j]] = m.known.get(&j).copied().unwrap_or(false);
            }
            (m.p, row)
        })
        .collect();
    LockstepResult { outputs, rounds }
}

/// Advance one player by one round. Returns `true` if the player is
/// still active (probed, or waited on a barrier).
#[allow(clippy::too_many_arguments)]
fn step(
    machine: &mut PlayerMachine,
    arena: &[Node],
    complete: &[bool],
    board: &Billboard<u64, Vec<bool>>,
    engine: &ProbeEngine,
    epoch: &tmwia_billboard::LivenessEpoch,
    alpha: f64,
    params: &Params,
    posts: &mut Vec<(u64, PlayerId, Vec<bool>)>,
) -> bool {
    // Crash-stop: a dead player halts where it stands and never posts
    // again, so its junk can't reach the billboard. Deadness comes from
    // the round-start epoch, like every other fault observation this
    // round. (Fault-free epochs report everyone live and never take
    // this branch.)
    if epoch.is_dead(machine.p) {
        machine.phase = Phase::Done;
        return false;
    }
    loop {
        match &mut machine.phase {
            Phase::Leaf { pos } => {
                let leaf = &arena[machine.leaf];
                if *pos < leaf.objects.len() {
                    let j = leaf.objects[*pos];
                    let v = engine.player(machine.p).probe(j);
                    machine.known.insert(j, v);
                    *pos += 1;
                    if *pos == leaf.objects.len() {
                        // Post the leaf output and move up.
                        let vec: Vec<bool> =
                            leaf.objects.iter().map(|j| machine.known[j]).collect();
                        posts.push((leaf.id, machine.p, vec));
                        machine.phase = Phase::Waiting { level: 0 };
                    }
                    return true;
                }
                // Empty leaf (cannot happen with threshold ≥ 2, but be
                // safe): post empty and move on.
                posts.push((leaf.id, machine.p, Vec::new()));
                machine.phase = Phase::Waiting { level: 0 };
            }
            Phase::Waiting { level } => {
                let lvl = *level;
                if lvl >= machine.path.len() {
                    machine.phase = Phase::Done;
                    return false;
                }
                let sib_idx = machine.path[lvl].sibling;
                if !complete[sib_idx] {
                    // Barrier wait: idle this round (costs a round, no
                    // probe).
                    return true;
                }
                // Sibling done: compute candidates and start selecting.
                let sib = &arena[sib_idx];
                let candidates =
                    popular_candidates(board, sib.id, sib.players.len(), alpha, params);
                if candidates.is_empty() {
                    // Defensive (empty sibling — unreachable with the
                    // ≥ 2 thresholds): adopt all-false.
                    let pairs: Vec<(ObjectId, bool)> =
                        sib.objects.iter().map(|&j| (j, false)).collect();
                    finish_level_with(machine, arena, lvl, &pairs, posts);
                    continue;
                }
                let machine_sel = SelectMachine::new(candidates, sib.objects.clone());
                machine.phase = Phase::Selecting {
                    level: lvl,
                    machine: machine_sel,
                };
            }
            Phase::Selecting {
                level,
                machine: sel,
            } => {
                let lvl = *level;
                if let Some(j) = sel.next_probe() {
                    let v = engine.player(machine.p).probe(j);
                    sel.observe(v);
                    // (The probe result also becomes known knowledge,
                    // but adopted values below take precedence for the
                    // sibling half, mirroring the orchestrated run.)
                    return true;
                }
                // Sweep over: adopt the winner.
                let winner = sel.winner();
                let adopted: Vec<bool> = sel.rows[winner].clone();
                let sib_objects = arena[machine.path[lvl].sibling].objects.clone();
                let pairs: Vec<(ObjectId, bool)> = sib_objects
                    .iter()
                    .copied()
                    .zip(adopted.iter().copied())
                    .collect();
                finish_level_with(machine, arena, lvl, &pairs, posts);
            }
            Phase::Done => return false,
        }
    }
}

/// Record adopted values for level `lvl`, post the parent vector and
/// advance to the next level.
fn finish_level_with(
    machine: &mut PlayerMachine,
    arena: &[Node],
    lvl: usize,
    pairs: &[(ObjectId, bool)],
    posts: &mut Vec<(u64, PlayerId, Vec<bool>)>,
) {
    for &(j, v) in pairs {
        machine.known.insert(j, v);
    }
    let parent = &arena[machine.path[lvl].parent];
    let vec: Vec<bool> = parent
        .objects
        .iter()
        // lint:allow(panic-hygiene) ascend runs only after `pairs` filled the sibling half; the own half was known at the previous level
        .map(|j| *machine.known.get(j).expect("parent coverage"))
        .collect();
    posts.push((parent.id, machine.p, vec));
    machine.phase = Phase::Waiting { level: lvl + 1 };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_rows;
    use crate::zero_radius::{zero_radius, BinarySpace};
    use tmwia_model::generators::planted_community;
    use tmwia_model::rng::derive;
    use tmwia_model::BitVec;

    #[test]
    fn select_machine_matches_select_rows() {
        // Random duels: the incremental machine must pick the same
        // winner with the same probe count as the batch Select.
        for seed in 0..50u64 {
            let mut rng = rng_for(seed, 0x4C53, 0);
            let len = 3 + (seed as usize % 40);
            let target = BitVec::random(len, &mut rng);
            let k = 1 + (seed as usize % 5);
            let cands: Vec<BitVec> = (0..k)
                .map(|i| {
                    let mut v = target.clone();
                    v.flip_random((i * 3) % (len / 2 + 1), &mut rng);
                    v
                })
                .collect();
            let rows: Vec<Vec<bool>> = cands
                .iter()
                .map(|c| (0..len).map(|j| c.get(j)).collect())
                .collect();
            let opt_rows: Vec<Vec<Option<bool>>> = rows
                .iter()
                .map(|r| r.iter().map(|&b| Some(b)).collect())
                .collect();
            let batch = select_rows(&opt_rows, |j| target.get(j), 0);

            let objects: Vec<ObjectId> = (0..len).collect();
            let mut sm = SelectMachine::new(rows, objects);
            let mut probes = 0;
            while let Some(j) = sm.next_probe() {
                sm.observe(target.get(j));
                probes += 1;
            }
            assert_eq!(sm.winner(), batch.winner, "seed {seed}");
            assert_eq!(probes, batch.probes, "seed {seed}");
        }
    }

    #[test]
    fn lockstep_equals_orchestrated_bit_for_bit() {
        for (n, k, seed) in [(64usize, 32usize, 1u64), (96, 64, 2), (128, 32, 3)] {
            let inst = planted_community(n, n, k, 0, seed);
            let players: Vec<PlayerId> = (0..n).collect();
            let objects: Vec<ObjectId> = (0..n).collect();
            let alpha = k as f64 / n as f64;
            let params = Params::practical();
            let run_seed = derive(seed, 0xAB, 0);

            let eng_a = ProbeEngine::new(inst.truth.clone());
            let orch = zero_radius(
                &BinarySpace::new(&eng_a),
                &players,
                &objects,
                alpha,
                &params,
                n,
                run_seed,
            );
            let eng_b = ProbeEngine::new(inst.truth.clone());
            let lock =
                lockstep_zero_radius(&eng_b, &players, &objects, alpha, &params, n, run_seed);

            for &p in &players {
                assert_eq!(orch[&p], lock.outputs[&p], "n={n} seed={seed} player {p}");
            }
            // Identical probe sets ⇒ identical charges.
            for p in 0..n {
                assert_eq!(
                    eng_a.probes_of(p),
                    eng_b.probes_of(p),
                    "n={n} seed={seed} cost of player {p}"
                );
            }
        }
    }

    #[test]
    fn rounds_exceed_probes_by_waits_only_modestly() {
        let n = 128;
        let inst = planted_community(n, n, n / 2, 0, 7);
        let engine = ProbeEngine::new(inst.truth.clone());
        let players: Vec<PlayerId> = (0..n).collect();
        let objects: Vec<ObjectId> = (0..n).collect();
        let res =
            lockstep_zero_radius(&engine, &players, &objects, 0.5, &Params::practical(), n, 9);
        let max_probes = engine.max_probes();
        assert!(res.rounds >= max_probes, "rounds can't beat probes");
        // Balanced tree ⇒ waits are a small multiple, not a blowup.
        assert!(
            res.rounds <= 4 * max_probes + 16,
            "rounds {} ≫ probes {max_probes}",
            res.rounds
        );
    }

    #[test]
    fn community_members_exact_under_lockstep() {
        let inst = planted_community(128, 128, 64, 0, 11);
        let engine = ProbeEngine::new(inst.truth.clone());
        let players: Vec<PlayerId> = (0..128).collect();
        let objects: Vec<ObjectId> = (0..128).collect();
        let res = lockstep_zero_radius(
            &engine,
            &players,
            &objects,
            0.5,
            &Params::practical(),
            128,
            13,
        );
        for &p in inst.community() {
            let w = BitVec::from_bools(&res.outputs[&p]);
            assert_eq!(&w, inst.truth.row(p), "player {p}");
        }
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let inst = planted_community(4, 8, 4, 0, 1);
        let engine = ProbeEngine::new(inst.truth.clone());
        let res = lockstep_zero_radius(&engine, &[], &[0, 1], 0.5, &Params::practical(), 4, 0);
        assert!(res.outputs.is_empty());
        assert_eq!(res.rounds, 0);
    }
}
