//! Algorithm **Small Radius** — communities of small positive diameter
//! (paper Figure 4, Theorem 4.4, Lemma 4.1).
//!
//! Zero Radius needs *exact* agreement; a community of diameter `D > 0`
//! defeats it. Small Radius repairs this with `K` independent rounds of
//! a random trick (Lemma 4.1): split the objects into `s = Θ(D^{3/2})`
//! random parts — with constant probability, *every* part simultaneously
//! has a ≥ 1/5 fraction of the community agreeing exactly on it. Run
//! Zero Radius per part with parameter `α/5`, let each player adopt the
//! closest popular per-part vector (Select, bound `D`), and stitch. One
//! of the `K` stitched vectors is within `5D` of every community member
//! (Lemma 4.3); a final Select with bound `5D` finds it.
//!
//! Guarantee (Theorem 4.4): with probability `1 − 2^{−Ω(K)}` every
//! community member outputs a vector within `5D` of its truth, using
//! `O(K·D^{3/2}(D + log n)/α)` probing rounds.

use crate::params::Params;
use crate::select::select_bits;
use crate::value::Value;
use crate::zero_radius::{zero_radius, BinarySpace};
use std::collections::BTreeMap;
use tmwia_billboard::{par_map_players, PlayerId, ProbeEngine};
use tmwia_model::matrix::ObjectId;
use tmwia_model::partition::uniform_parts;
use tmwia_model::rng::{derive, rng_for, tags};
use tmwia_model::BitVec;

/// Output: each player's estimate over the `objects` view (aligned with
/// the input slice).
pub type SrOutput = BTreeMap<PlayerId, BitVec>;

/// Run Algorithm Small Radius for the player set `players` over the
/// object view `objects`, assuming an `(alpha, d)`-typical subset.
/// `n_global` anchors the paper's `log n` terms; `seed` makes the run
/// reproducible.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn small_radius(
    engine: &ProbeEngine,
    players: &[PlayerId],
    objects: &[ObjectId],
    alpha: f64,
    d: usize,
    params: &Params,
    n_global: usize,
    seed: u64,
) -> SrOutput {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
    if players.is_empty() || objects.is_empty() {
        return players
            .iter()
            .map(|&p| (p, BitVec::zeros(objects.len())))
            .collect();
    }
    // D = 0 is exactly Zero Radius (Fig. 1 dispatches there directly;
    // recursive callers may still pass 0).
    if d == 0 {
        let out = zero_radius(
            &BinarySpace::new(engine),
            players,
            objects,
            alpha,
            params,
            n_global,
            seed,
        );
        return out
            .into_iter()
            .map(|(p, vals)| (p, BitVec::from_bools(&vals)))
            .collect();
    }

    let k_iters = params.confidence_k(n_global);
    let s = params.partition_count(d).min(objects.len()).max(1);

    // Step 1: K independent stitched candidates per player.
    let mut per_player_candidates: Vec<Vec<BitVec>> =
        vec![Vec::with_capacity(k_iters); players.len()];
    let player_slot: BTreeMap<PlayerId, usize> =
        players.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    for t in 0..k_iters {
        // Step 1a: random partition of the object view.
        let mut rng = rng_for(seed, tags::SMALL_RADIUS_PART, t as u64);
        let local: Vec<usize> = (0..objects.len()).collect();
        let parts = uniform_parts(&local, s, &mut rng);

        // Steps 1b–1c per part, parts in parallel. Every part probes
        // the *same* player set, so under a fault plan the parts run as
        // ordered phases (see `par_map_phased`) to keep each player's
        // cumulative probe sequence — and hence its crash point —
        // schedule-independent; fault-free runs keep the parallel loop.
        let part_results: Vec<(Vec<usize>, Vec<BitVec>)> =
            tmwia_billboard::engine::par_map_phased(engine, parts.len(), |i| {
                let part = &parts[i];
                if part.is_empty() {
                    return (Vec::new(), vec![BitVec::zeros(0); players.len()]);
                }
                let part_objs: Vec<ObjectId> = part.iter().map(|&l| objects[l]).collect();
                let part_seed =
                    derive(seed, tags::SMALL_RADIUS_PART, ((t as u64) << 32) | i as u64);
                // Step 1b: Zero Radius with parameter α/5.
                let zr = zero_radius(
                    &BinarySpace::new(engine),
                    players,
                    &part_objs,
                    alpha / params.zr_alpha_div,
                    params,
                    n_global,
                    part_seed,
                );
                // U_i: vectors output by ≥ α·|voters|/5 players. Only
                // live players vote — a crashed player's Zero Radius
                // output is memo-or-false junk, and counting it could
                // outvote the surviving community. Liveness is frozen
                // *after* this part's Zero Radius: under the phased
                // fault schedule every player is quiescent here, so the
                // epoch is exact and schedule-independent. Fault-free
                // runs have every player live, the old tally exactly.
                let epoch = engine.begin_round();
                let voters = epoch.live_players(players);
                let u_i = popular_vectors(&zr, &voters, alpha, params);
                // Step 1c: every player adopts the closest U_i vector
                // within bound D. With every voter dead the candidate
                // set is empty; fall back to all-zeros rather than
                // handing Select nothing.
                let picks = par_map_players(players, |p| {
                    if u_i.is_empty() {
                        return BitVec::zeros(part_objs.len());
                    }
                    let handle = engine.player(p);
                    let r = select_bits(&handle, &part_objs, &u_i, d, params.fresh_probes);
                    u_i[r.winner].clone()
                });
                (part.clone(), picks)
            });

        // Stitch u^t(p) from the per-part picks.
        for (slot, &p) in players.iter().enumerate() {
            let _ = p;
            let mut stitched = BitVec::zeros(objects.len());
            for (part_local, picks) in &part_results {
                if part_local.is_empty() {
                    continue;
                }
                stitched.scatter_from(&picks[slot], part_local);
            }
            per_player_candidates[slot].push(stitched);
        }
    }

    // Step 2: each player selects among its K stitched candidates with
    // bound 5D, over the full object view.
    let final_bound = params.final_bound_mult * d;
    let outputs = par_map_players(players, |p| {
        let slot = player_slot[&p];
        let handle = engine.player(p);
        let cands = &per_player_candidates[slot];
        let r = select_bits(&handle, objects, cands, final_bound, params.fresh_probes);
        cands[r.winner].clone()
    });
    players.iter().copied().zip(outputs).collect()
}

/// The per-part candidate set `U_i` of step 1b: vectors output by at
/// least `α·|P| / zr_alpha_div` players; falls back to the most-voted
/// vectors (capped at `⌈zr_alpha_div/α⌉`) when the threshold filters
/// everything out, so Select always has candidates.
fn popular_vectors<V>(
    zr: &BTreeMap<PlayerId, Vec<V>>,
    players: &[PlayerId],
    alpha: f64,
    params: &Params,
) -> Vec<BitVec>
where
    V: Value + Into<bool> + Copy,
{
    let mut counts: BTreeMap<&Vec<V>, usize> = BTreeMap::new();
    for &p in players {
        *counts.entry(&zr[&p]).or_insert(0) += 1;
    }
    let mut tally: Vec<(Vec<V>, usize)> = counts.into_iter().map(|(v, c)| (v.clone(), c)).collect();
    tally.sort();
    let min_votes = ((alpha * players.len() as f64 / params.zr_alpha_div).ceil() as usize).max(1);
    let mut keep: Vec<&Vec<V>> = tally
        .iter()
        .filter(|&&(_, c)| c >= min_votes)
        .map(|(v, _)| v)
        .collect();
    if keep.is_empty() {
        let cap = ((params.zr_alpha_div / alpha).ceil() as usize).max(1);
        let mut by_votes: Vec<&(Vec<V>, usize)> = tally.iter().collect();
        by_votes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        keep = by_votes.into_iter().take(cap).map(|(v, _)| v).collect();
    }
    keep.into_iter()
        .map(|vals| BitVec::from_fn(vals.len(), |j| vals[j].into()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmwia_model::generators::planted_community;
    use tmwia_model::metrics::CommunityReport;

    fn run(
        n: usize,
        m: usize,
        k: usize,
        d: usize,
        seed: u64,
    ) -> (ProbeEngine, Vec<PlayerId>, SrOutput) {
        let inst = planted_community(n, m, k, d, seed);
        let community = inst.community().to_vec();
        let engine = ProbeEngine::new(inst.truth);
        let players: Vec<PlayerId> = (0..n).collect();
        let objects: Vec<ObjectId> = (0..m).collect();
        let out = small_radius(
            &engine,
            &players,
            &objects,
            k as f64 / n as f64,
            d,
            &Params::practical(),
            n,
            seed,
        );
        (engine, community, out)
    }

    #[test]
    fn community_error_within_5d() {
        let d = 6;
        let (engine, community, out) = run(128, 128, 64, d, 21);
        let outputs: Vec<BitVec> = (0..128).map(|p| out[&p].clone()).collect();
        let report = CommunityReport::evaluate(engine.truth(), &outputs, &community);
        assert!(
            report.discrepancy <= 5 * d,
            "discrepancy {} > 5D = {}",
            report.discrepancy,
            5 * d
        );
    }

    #[test]
    fn d_zero_delegates_to_zero_radius_exactly() {
        let (engine, community, out) = run(64, 64, 32, 0, 22);
        for &p in &community {
            assert_eq!(&out[&p], engine.truth().row(p));
        }
    }

    #[test]
    fn all_players_receive_full_length_outputs() {
        let (_, _, out) = run(64, 96, 32, 4, 23);
        assert_eq!(out.len(), 64);
        assert!(out.values().all(|v| v.len() == 96));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(64, 64, 32, 4, 24).2;
        let b = run(64, 64, 32, 4, 24).2;
        assert_eq!(a, b);
    }

    #[test]
    fn empty_players_or_objects() {
        let inst = planted_community(8, 8, 4, 0, 1);
        let engine = ProbeEngine::new(inst.truth);
        let out = small_radius(&engine, &[], &[0, 1], 0.5, 2, &Params::practical(), 8, 0);
        assert!(out.is_empty());
        let out2 = small_radius(&engine, &[0, 1], &[], 0.5, 2, &Params::practical(), 8, 0);
        assert_eq!(out2[&0].len(), 0);
    }

    #[test]
    fn object_view_subsets_align() {
        // Run on the odd objects only; outputs index the view.
        let inst = planted_community(48, 96, 48, 4, 25);
        let engine = ProbeEngine::new(inst.truth.clone());
        let players: Vec<PlayerId> = (0..48).collect();
        let objects: Vec<ObjectId> = (1..96).step_by(2).collect();
        let out = small_radius(
            &engine,
            &players,
            &objects,
            1.0,
            4,
            &Params::practical(),
            48,
            26,
        );
        // Errors measured on the view stay within 5D for the community
        // (here: everyone).
        for &p in &players {
            let view_truth = inst.truth.row(p).project(&objects);
            assert!(out[&p].hamming(&view_truth) <= 20, "player {p}");
        }
    }

    #[test]
    fn cached_cost_never_exceeds_m() {
        // With probe caching on (default), each (player, object) pair is
        // charged at most once, so even K iterations over s parts cost
        // at most m rounds per player. (Cost *scaling* in D is measured
        // by experiment E4 at scales where s·threshold < m; at toy
        // scales the cache cap saturates and hides the shape.)
        let (engine, _, _) = run(96, 96, 48, 8, 27);
        for p in 0..96 {
            assert!(engine.probes_of(p) <= 96, "player {p} overpaid");
        }
    }
}
