//! Algorithm **RSelect** — Choose Closest *without* a distance bound
//! (paper Figure 7, Theorem 6.1).
//!
//! Used by the unknown-`D` wrapper (§6): the player holds `|V|`
//! candidate output vectors (one per guessed `D`) and must pick one that
//! is within a constant factor of the closest, spending only
//! `O(|V|² · log n)` probes regardless of how far the candidates are.
//!
//! Every ordered pair of candidates duels: sample `c·log n` coordinates
//! from their disagreement set, probe them, and declare a loser if a
//! `≥ 2/3` majority of the samples sides with the opponent. Any
//! undefeated vector is a valid output (Theorem 6.1: w.h.p. the closest
//! vector is undefeated, and every undefeated vector is within `O(D)` of
//! the player).

use crate::params::Params;
use tmwia_billboard::PlayerHandle;
use tmwia_model::matrix::ObjectId;
use tmwia_model::rng::{rng_for, tags};
use tmwia_model::{BitVec, TernaryVec};

/// Outcome of one RSelect run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RSelectResult {
    /// Index of the chosen candidate.
    pub winner: usize,
    /// Number of probe invocations performed.
    pub probes: usize,
    /// Losses per candidate (diagnostics; the winner has the minimum).
    pub losses: Vec<usize>,
}

/// Run RSelect for one player over ternary candidates.
///
/// `objects[j]` is the real object behind view-coordinate `j`;
/// `n_global` scales the per-duel sample size; `seed` must be unique per
/// (player, invocation) — derive it with [`tmwia_model::rng::derive`].
///
/// The paper outputs "any vector with 0 losses". We pick the vector with
/// the *fewest* losses (ties: smallest index), which coincides with the
/// paper whenever a 0-loss vector exists and degrades gracefully when
/// the sampling majority misfires.
///
/// # Panics
/// Panics if `candidates` is empty or lengths disagree with `objects`.
pub fn rselect(
    handle: &PlayerHandle<'_>,
    objects: &[ObjectId],
    candidates: &[TernaryVec],
    params: &Params,
    n_global: usize,
    seed: u64,
) -> RSelectResult {
    let k = candidates.len();
    assert!(k > 0, "RSelect needs at least one candidate");
    assert!(
        candidates.iter().all(|c| c.len() == objects.len()),
        "candidates must be projected onto the object view"
    );
    let samples = params.rselect_samples(n_global);
    let mut rng = rng_for(seed, tags::RSELECT, handle.id() as u64);
    let mut losses = vec![0usize; k];
    let mut probes = 0usize;

    for a in 0..k {
        for b in (a + 1)..k {
            // Disagreement set X of the pair (concrete-vs-concrete only).
            let x = candidates[a].diff_indices(&candidates[b]);
            if x.is_empty() {
                continue;
            }
            let picked: Vec<usize> = if x.len() <= samples {
                x.clone()
            } else {
                rand::seq::index::sample(&mut rng, x.len(), samples)
                    .into_iter()
                    .map(|i| x[i])
                    .collect()
            };
            let mut agree_a = 0usize;
            for &j in &picked {
                let truth = if params.fresh_probes {
                    // lint:allow(oracle-isolation) RSelect's sampled duels re-pay probes under the paper's strict accounting (cf. Thm 3.2 remark)
                    handle.probe_fresh(objects[j]) // lint:allow(oracle-taint) same Thm 3.2 re-pay: probe_fresh is itself the paid channel here, charged per call
                } else {
                    handle.probe(objects[j])
                };
                probes += 1;
                // On X both candidates are concrete and differ, so the
                // truth agrees with exactly one of them.
                // lint:allow(panic-hygiene) diff_indices only returns coordinates where both entries are concrete
                let a_val = candidates[a].get(j).to_bool().expect("concrete on X");
                if a_val == truth {
                    agree_a += 1;
                }
            }
            let t = picked.len() as f64;
            if agree_a as f64 >= params.rselect_majority * t {
                losses[b] += 1; // b loses: the samples side with a
            } else if (picked.len() - agree_a) as f64 >= params.rselect_majority * t {
                losses[a] += 1;
            }
        }
    }

    // lint:allow(panic-hygiene) k > 0 is asserted at function entry
    let winner = (0..k).min_by_key(|&c| (losses[c], c)).expect("k > 0");
    RSelectResult {
        winner,
        probes,
        losses,
    }
}

/// RSelect over fully-concrete binary candidates.
pub fn rselect_bits(
    handle: &PlayerHandle<'_>,
    objects: &[ObjectId],
    candidates: &[BitVec],
    params: &Params,
    n_global: usize,
    seed: u64,
) -> RSelectResult {
    let ternary: Vec<TernaryVec> = candidates.iter().map(TernaryVec::from_bits).collect();
    rselect(handle, objects, &ternary, params, n_global, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tmwia_billboard::ProbeEngine;
    use tmwia_model::matrix::PrefMatrix;

    fn setup(m: usize, seed: u64) -> (ProbeEngine, Vec<ObjectId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = PrefMatrix::new(vec![BitVec::random(m, &mut rng)]);
        let objects: Vec<ObjectId> = (0..m).collect();
        (ProbeEngine::new(truth), objects)
    }

    #[test]
    fn exact_candidate_wins() {
        let (engine, objects) = setup(512, 1);
        let target = engine.truth().row(0).clone();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cands: Vec<BitVec> = (0..4).map(|_| BitVec::random(512, &mut rng)).collect();
        cands[2] = target.clone();
        let r = rselect_bits(
            &engine.player(0),
            &objects,
            &cands,
            &Params::theory(),
            512,
            7,
        );
        assert_eq!(r.winner, 2);
        assert_eq!(r.losses[2], 0);
    }

    #[test]
    fn far_candidates_all_lose_to_close_one() {
        let (engine, objects) = setup(1024, 3);
        let target = engine.truth().row(0).clone();
        let mut rng = StdRng::seed_from_u64(4);
        // Close candidate at distance 5; far ones at ~512.
        let mut close = target.clone();
        close.flip_random(5, &mut rng);
        let cands = vec![
            BitVec::random(1024, &mut rng),
            close.clone(),
            BitVec::random(1024, &mut rng),
        ];
        let r = rselect_bits(
            &engine.player(0),
            &objects,
            &cands,
            &Params::theory(),
            1024,
            8,
        );
        assert_eq!(r.winner, 1);
        assert!(r.losses[0] > 0 && r.losses[2] > 0);
    }

    #[test]
    fn probe_budget_quadratic_in_candidates() {
        let (engine, objects) = setup(2048, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let cands: Vec<BitVec> = (0..6).map(|_| BitVec::random(2048, &mut rng)).collect();
        let params = Params::theory();
        let r = rselect_bits(&engine.player(0), &objects, &cands, &params, 2048, 9);
        let samples = params.rselect_samples(2048);
        let max = cands.len() * (cands.len() - 1) / 2 * samples;
        assert!(r.probes <= max, "{} > {max}", r.probes);
        assert!(r.probes > 0);
    }

    #[test]
    fn winner_is_within_constant_factor_of_optimum() {
        // Theorem 6.1 quality check across several seeds.
        for seed in 0..10u64 {
            let (engine, objects) = setup(1024, 100 + seed);
            let target = engine.truth().row(0).clone();
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let dists = [3usize, 9, 27, 81, 243];
            let cands: Vec<BitVec> = dists
                .iter()
                .map(|&d| {
                    let mut v = target.clone();
                    v.flip_random(d, &mut rng);
                    v
                })
                .collect();
            let r = rselect_bits(
                &engine.player(0),
                &objects,
                &cands,
                &Params::theory(),
                1024,
                seed,
            );
            let chosen = cands[r.winner].hamming(&target);
            // Best is 3; "O(D)" with the 2/3 majority gives factor ≤ 9
            // comfortably at these separations.
            assert!(chosen <= 27, "seed {seed}: chose distance {chosen}");
        }
    }

    #[test]
    fn identical_candidates_no_probes_index_tiebreak() {
        let (engine, objects) = setup(64, 7);
        let v = BitVec::zeros(64);
        let r = rselect_bits(
            &engine.player(0),
            &objects,
            &[v.clone(), v.clone()],
            &Params::theory(),
            64,
            1,
        );
        assert_eq!(r.probes, 0);
        assert_eq!(r.winner, 0);
    }

    #[test]
    fn ternary_candidates_duel_on_concrete_overlap() {
        let (engine, objects) = setup(256, 9);
        let target = engine.truth().row(0).clone();
        let exact = TernaryVec::from_bits(&target);
        // Opponent: concrete disagreement on 40 coords, rest unknown.
        let mut opp = TernaryVec::unknowns(256);
        for j in 0..40 {
            let wrong = !target.get(j);
            opp.set(j, tmwia_model::ternary::Trit::from(wrong));
        }
        let r = rselect(
            &engine.player(0),
            &objects,
            &[opp, exact],
            &Params::theory(),
            256,
            3,
        );
        assert_eq!(r.winner, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (engine, objects) = setup(512, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let cands: Vec<BitVec> = (0..4).map(|_| BitVec::random(512, &mut rng)).collect();
        let p = Params::practical();
        let a = rselect_bits(&engine.player(0), &objects, &cands, &p, 512, 42);
        let b = rselect_bits(&engine.player(0), &objects, &cands, &p, 512, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        let (engine, objects) = setup(8, 13);
        rselect(&engine.player(0), &objects, &[], &Params::theory(), 8, 0);
    }
}
