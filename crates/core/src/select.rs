//! Algorithm **Select** — the Choose Closest problem with a distance
//! bound (paper Figure 3, Theorem 3.2).
//!
//! Given candidate vectors `V` and a bound `D` such that some candidate
//! is within distance `D` of the player's hidden vector, Select probes
//! only coordinates on which candidates *disagree with each other*
//! (the set `X(V)`), evicts any candidate caught disagreeing with the
//! player more than `D` times, and finally outputs the closest surviving
//! candidate (lexicographically first among ties). Theorem 3.2: the
//! output is exactly the closest candidate, and at most `k(D+1)` probes
//! are spent (`k = |V|`).
//!
//! Implementation note: the paper repeatedly probes "the first
//! coordinate in `X(V)` not probed yet", recomputing `X` as candidates
//! die. Since evicting candidates only ever *shrinks* `X`, a single
//! forward sweep over coordinates is equivalent: at each coordinate we
//! probe iff two currently-alive candidates disagree there. This keeps
//! the scan `O(len · k)` instead of recomputing `X` from scratch after
//! every probe.

use crate::value::Value;
use tmwia_billboard::PlayerHandle;
use tmwia_model::matrix::ObjectId;
use tmwia_model::{BitVec, TernaryVec};

/// Outcome of one Select run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectResult {
    /// Index (into the input candidate slice) of the chosen vector.
    pub winner: usize,
    /// Number of probe invocations performed.
    pub probes: usize,
}

/// Generic Select over candidate rows of optional values.
///
/// `rows[c][j]` is candidate `c`'s value at coordinate `j`, or `None`
/// for a `?` entry (ternary candidates; `d̃` semantics — `?` never
/// counts as a disagreement, matching Notation 3.2). `probe(j)` reveals
/// the player's true value at coordinate `j` and is invoked at most once
/// per coordinate.
///
/// If every candidate exceeds the bound (possible only when the caller's
/// precondition "some candidate within `D`" is violated), the candidate
/// with the fewest observed disagreements is returned instead of
/// panicking — the calling algorithms treat Select's output as a
/// best-effort estimate in that case.
///
/// # Panics
/// Panics if `rows` is empty or rows have unequal lengths.
pub fn select_rows<V: Value>(
    rows: &[Vec<Option<V>>],
    mut probe: impl FnMut(usize) -> V,
    bound: usize,
) -> SelectResult {
    let k = rows.len();
    assert!(k > 0, "Select needs at least one candidate");
    let len = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == len),
        "candidate vectors must share one length"
    );

    let mut alive: Vec<bool> = vec![true; k];
    let mut disagreements: Vec<usize> = vec![0; k];
    let mut alive_count = k;
    let mut probes = 0usize;
    // The player's revealed values on probed coordinates (the set `Y`).
    let mut revealed: Vec<Option<V>> = vec![None; len];

    'sweep: for j in 0..len {
        if alive_count <= 1 {
            break;
        }
        // Is j in X(V) for the currently-alive candidates? I.e. do two
        // alive candidates hold distinct concrete values at j?
        let mut first: Option<&V> = None;
        let mut in_x = false;
        for (c, row) in rows.iter().enumerate() {
            if !alive[c] {
                continue;
            }
            if let Some(v) = &row[j] {
                match first {
                    None => first = Some(v),
                    Some(u) if u != v => {
                        in_x = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
        if !in_x {
            continue;
        }
        let truth = probe(j);
        probes += 1;
        revealed[j] = Some(truth.clone());
        for c in 0..k {
            if !alive[c] {
                continue;
            }
            if let Some(v) = &rows[c][j] {
                if *v != truth {
                    disagreements[c] += 1;
                    if disagreements[c] > bound {
                        alive[c] = false;
                        alive_count -= 1;
                        if alive_count == 0 {
                            break 'sweep;
                        }
                    }
                }
            }
        }
    }

    // Step 2: among survivors, pick the candidate closest to the player
    // on the probed set Y. Ternary refinement over the paper's binary
    // statement: `d̃` ignores `?` entries, so an unknown-heavy candidate
    // can tie a genuinely matching one at distance 0 — break such ties
    // toward the candidate with the most probed *agreements* (for fully
    // concrete candidates this is the paper's ordering unchanged), then
    // the lexicographically first row, then the smallest index. If
    // nobody survived (precondition violated), rank everyone the same
    // way — best-effort output instead of a panic.
    let pool: Vec<usize> = if alive_count > 0 {
        (0..k).filter(|&c| alive[c]).collect()
    } else {
        (0..k).collect()
    };
    let score_on_y = |c: usize| -> (usize, usize) {
        let mut dist = 0usize;
        let mut agree = 0usize;
        for (cv, rv) in rows[c].iter().zip(&revealed) {
            if let (Some(a), Some(b)) = (cv, rv) {
                if a == b {
                    agree += 1;
                } else {
                    dist += 1;
                }
            }
        }
        (dist, agree)
    };
    let winner = pool
        .into_iter()
        .min_by(|&a, &b| {
            let (da, aa) = score_on_y(a);
            let (db, ab) = score_on_y(b);
            da.cmp(&db)
                .then_with(|| ab.cmp(&aa)) // more agreements first
                .then_with(|| rows[a].cmp(&rows[b]))
                .then_with(|| a.cmp(&b))
        })
        // lint:allow(panic-hygiene) pool falls back to 0..k and k > 0 is asserted at function entry
        .expect("pool is non-empty");

    SelectResult { winner, probes }
}

/// Select over fully-concrete candidate vectors of an arbitrary value
/// domain (the form Zero Radius uses in step 4).
///
/// ```
/// use tmwia_core::select_values;
///
/// let truth = [3u8, 1, 4, 1, 5];
/// let close = truth.to_vec();                    // distance 0
/// let far = vec![3u8, 1, 4, 1, 9];               // distance 1
/// let r = select_values(&[far, close], |j| truth[j], 1);
/// assert_eq!(r.winner, 1);
/// assert!(r.probes <= 2 * (1 + 1));              // k(D+1) (Thm 3.2)
/// ```
pub fn select_values<V: Value>(
    candidates: &[Vec<V>],
    probe: impl FnMut(usize) -> V,
    bound: usize,
) -> SelectResult {
    let rows: Vec<Vec<Option<V>>> = candidates
        .iter()
        .map(|c| c.iter().cloned().map(Some).collect())
        .collect();
    select_rows(&rows, probe, bound)
}

/// Select over binary candidates for a real player: coordinate `j` of
/// the view probes object `objects[j]` through `handle`. With
/// `fresh = true` the strict always-pay semantics are used (remark after
/// Theorem 3.2).
pub fn select_bits(
    handle: &PlayerHandle<'_>,
    objects: &[ObjectId],
    candidates: &[BitVec],
    bound: usize,
    fresh: bool,
) -> SelectResult {
    assert!(
        candidates.iter().all(|c| c.len() == objects.len()),
        "candidates must be projected onto the object view"
    );
    let rows: Vec<Vec<Option<bool>>> = candidates
        .iter()
        .map(|c| (0..c.len()).map(|j| Some(c.get(j))).collect())
        .collect();
    select_rows(
        &rows,
        |j| {
            if fresh {
                // lint:allow(oracle-isolation) Thm 3.2 remark: Select disregards probes made before its execution, so the strict accounting re-pays here
                handle.probe_fresh(objects[j]) // lint:allow(oracle-taint) same Thm 3.2 re-pay: probe_fresh is itself the paid channel here, charged per call
            } else {
                handle.probe(objects[j])
            }
        },
        bound,
    )
}

/// Select over ternary candidates (`?` entries never disagree), probing
/// through `handle` as in [`select_bits`]. Used by Large Radius step 4,
/// where candidates are the Coalesce outputs `B_ℓ`.
pub fn select_ternary(
    handle: &PlayerHandle<'_>,
    objects: &[ObjectId],
    candidates: &[TernaryVec],
    bound: usize,
    fresh: bool,
) -> SelectResult {
    assert!(
        candidates.iter().all(|c| c.len() == objects.len()),
        "candidates must be projected onto the object view"
    );
    let rows: Vec<Vec<Option<bool>>> = candidates
        .iter()
        .map(|c| (0..c.len()).map(|j| c.get(j).to_bool()).collect())
        .collect();
    select_rows(
        &rows,
        |j| {
            if fresh {
                // lint:allow(oracle-isolation) Thm 3.2 remark: Select disregards probes made before its execution, so the strict accounting re-pays here
                handle.probe_fresh(objects[j]) // lint:allow(oracle-taint) same Thm 3.2 re-pay: probe_fresh is itself the paid channel here, charged per call
            } else {
                handle.probe(objects[j])
            }
        },
        bound,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tmwia_billboard::ProbeEngine;
    use tmwia_model::generators::select_hard_case;
    use tmwia_model::matrix::PrefMatrix;

    /// Probe closure over a plain BitVec target, counting calls.
    fn bit_probe(target: &BitVec) -> impl FnMut(usize) -> bool + '_ {
        |j| target.get(j)
    }

    #[test]
    fn picks_exact_match_with_bound_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = BitVec::random(64, &mut rng);
        let mut cands: Vec<BitVec> = (0..5).map(|_| BitVec::random(64, &mut rng)).collect();
        cands[3] = target.clone();
        let rows: Vec<Vec<Option<bool>>> = cands
            .iter()
            .map(|c| (0..64).map(|j| Some(c.get(j))).collect())
            .collect();
        let r = select_rows(&rows, bit_probe(&target), 0);
        assert_eq!(r.winner, 3);
    }

    #[test]
    fn returns_closest_not_just_within_bound() {
        // Theorem 3.2: output is the closest vector, not merely one
        // within D.
        let target = BitVec::zeros(32);
        let near = {
            let mut v = target.clone();
            v.flip(0);
            v
        }; // distance 1
        let nearer = target.clone(); // distance 0
        let far = {
            let mut v = target.clone();
            v.flip(1);
            v.flip(2);
            v
        }; // distance 2
        let cands = [near, nearer, far];
        let rows: Vec<Vec<Option<bool>>> = cands
            .iter()
            .map(|c| (0..32).map(|j| Some(c.get(j))).collect())
            .collect();
        let r = select_rows(&rows, bit_probe(&target), 2);
        assert_eq!(r.winner, 1);
    }

    #[test]
    fn probe_bound_k_times_d_plus_one() {
        // The adversarial construction from the generators crate forces
        // close to the worst case; the k(D+1) bound must still hold.
        for (k, d) in [(2usize, 0usize), (4, 3), (8, 5), (3, 10)] {
            let (target, cands) = select_hard_case(256, k, d, 99);
            let rows: Vec<Vec<Option<bool>>> = cands
                .iter()
                .map(|c| (0..256).map(|j| Some(c.get(j))).collect())
                .collect();
            let mut count = 0usize;
            let r = select_rows(
                &rows,
                |j| {
                    count += 1;
                    target.get(j)
                },
                d,
            );
            assert_eq!(count, r.probes);
            assert!(
                r.probes <= k * (d + 1),
                "k={k} d={d}: {} > {}",
                r.probes,
                k * (d + 1)
            );
            assert_eq!(cands[r.winner], target);
        }
    }

    #[test]
    fn single_candidate_needs_no_probes() {
        let rows = vec![vec![Some(true), Some(false)]];
        let r = select_rows(&rows, |_| unreachable!("no probes expected"), 3);
        assert_eq!(r.winner, 0);
        assert_eq!(r.probes, 0);
    }

    #[test]
    fn identical_candidates_need_no_probes() {
        let row: Vec<Option<bool>> = vec![Some(true); 16];
        let rows = vec![row.clone(), row.clone(), row];
        let r = select_rows(&rows, |_| unreachable!(), 1);
        assert_eq!(r.probes, 0);
        // Lexicographic + index tie-break: first index.
        assert_eq!(r.winner, 0);
    }

    #[test]
    fn ternary_unknowns_never_disagree() {
        // Candidate 0 is all-? — it can never be evicted, but a fully
        // matching concrete candidate is closer on Y.
        let target = BitVec::from_bools(&[true, true, false, false]);
        let all_unknown = TernaryVec::unknowns(4);
        let exact = TernaryVec::from_bits(&target);
        let mut wrong = target.clone();
        wrong.flip(0);
        let wrongt = TernaryVec::from_bits(&wrong);
        let cands = [all_unknown, wrongt, exact];
        let rows: Vec<Vec<Option<bool>>> = cands
            .iter()
            .map(|c| (0..4).map(|j| c.get(j).to_bool()).collect())
            .collect();
        let r = select_rows(&rows, bit_probe(&target), 0);
        assert_eq!(r.winner, 2);
    }

    #[test]
    fn violated_precondition_keeps_survivor() {
        // Bound 0 but no exact match. Per Fig. 3, probing stops once one
        // candidate is left: the first eviction ends the duel and the
        // survivor is output — even though it is farther overall.
        let target = BitVec::zeros(8);
        let mut a = target.clone();
        a.flip(0); // distance 1 — evicted at coordinate 0
        let mut b = target.clone();
        b.flip(1);
        b.flip(2); // distance 2 — survives, never probed past coord 0
        let rows: Vec<Vec<Option<bool>>> = [a, b]
            .iter()
            .map(|c| (0..8).map(|j| Some(c.get(j))).collect())
            .collect();
        let r = select_rows(&rows, bit_probe(&target), 0);
        assert_eq!(r.winner, 1);
    }

    #[test]
    fn all_evicted_falls_back_to_fewest_disagreements() {
        // Only non-binary domains can evict *everyone*: the truth can
        // differ from both duellists at the probed coordinate.
        let truth: Vec<u32> = vec![9, 9];
        let a = vec![5u32, 9]; // one disagreement at coord 0
        let b = vec![7u32, 2]; // disagreements at both coords
        let r = select_values(&[b.clone(), a.clone()], |j| truth[j], 0);
        // Both die at coordinate 0; fallback ranks by observed
        // disagreements: a saw 1, b saw 1 (only coord 0 probed)… then
        // lexicographic row order puts a (=[5,9]) first.
        assert_eq!(r.winner, 1);
    }

    #[test]
    fn select_values_generic_domain() {
        // Value domain = u32 "candidate indices" as in Large Radius.
        let truth: Vec<u32> = vec![7, 7, 3, 9];
        let good = truth.clone();
        let bad = vec![7u32, 7, 3, 1];
        let r = select_values(&[bad, good], |j| truth[j], 0);
        assert_eq!(r.winner, 1);
        assert!(r.probes <= 2); // only coordinate 3 distinguishes
    }

    #[test]
    fn select_bits_charges_engine() {
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<BitVec> = (0..3).map(|_| BitVec::random(32, &mut rng)).collect();
        let truth = PrefMatrix::new(rows);
        let target = truth.row(0).clone();
        let engine = ProbeEngine::new(truth);
        let handle = engine.player(0);
        let objects: Vec<usize> = (0..32).collect();
        let cands = vec![target.clone(), BitVec::random(32, &mut rng)];
        let r = select_bits(&handle, &objects, &cands, 0, false);
        assert_eq!(r.winner, 0);
        assert_eq!(engine.probes_of(0), r.probes as u64);
        assert!(r.probes >= 1);
    }

    #[test]
    fn select_bits_fresh_repays() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<BitVec> = (0..2).map(|_| BitVec::random(16, &mut rng)).collect();
        let truth = PrefMatrix::new(rows);
        let target = truth.row(0).clone();
        let mut other = target.clone();
        other.flip(3);
        let engine = ProbeEngine::new(truth);
        let handle = engine.player(0);
        let objects: Vec<usize> = (0..16).collect();
        // Pre-probe everything; cached select is then free…
        for j in 0..16 {
            handle.probe(j);
        }
        let before = engine.probes_of(0);
        let cands = vec![target.clone(), other.clone()];
        select_bits(&handle, &objects, &cands, 0, false);
        assert_eq!(engine.probes_of(0), before);
        // …but fresh mode pays again.
        select_bits(&handle, &objects, &cands, 0, true);
        assert!(engine.probes_of(0) > before);
    }

    #[test]
    fn select_ternary_end_to_end() {
        let mut rng = StdRng::seed_from_u64(6);
        let truth_row = BitVec::random(24, &mut rng);
        let engine = ProbeEngine::new(PrefMatrix::new(vec![truth_row.clone()]));
        let handle = engine.player(0);
        let objects: Vec<usize> = (0..24).collect();
        let mut partial = TernaryVec::from_bits(&truth_row);
        partial.set(0, tmwia_model::ternary::Trit::Unknown);
        let mut wrong = TernaryVec::from_bits(&truth_row);
        // Flip five concrete entries in `wrong`.
        for j in 1..6 {
            let flipped = !truth_row.get(j);
            wrong.set(j, tmwia_model::ternary::Trit::from(flipped));
        }
        let r = select_ternary(&handle, &objects, &[wrong, partial], 2, false);
        assert_eq!(r.winner, 1);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        select_rows::<bool>(&[], |_| true, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut rng = StdRng::seed_from_u64(7);
        let target = BitVec::random(128, &mut rng);
        let cands: Vec<BitVec> = (0..6)
            .map(|_| {
                let mut v = target.clone();
                v.flip_random(3, &mut rng);
                v
            })
            .collect();
        let rows: Vec<Vec<Option<bool>>> = cands
            .iter()
            .map(|c| (0..128).map(|j| Some(c.get(j))).collect())
            .collect();
        let r1 = select_rows(&rows, bit_probe(&target), 6);
        let r2 = select_rows(&rows, bit_probe(&target), 6);
        assert_eq!(r1, r2);
        // And the winner really is a closest candidate.
        let best = cands.iter().map(|c| c.hamming(&target)).min().unwrap();
        assert_eq!(cands[r1.winner].hamming(&target), best);
    }
}
