//! # tmwia-core
//!
//! The algorithms of Alon, Awerbuch, Azar & Patt-Shamir, *"Tell Me Who I
//! Am: An Interactive Recommendation System"* (SPAA 2006): each of `n`
//! players reconstructs its hidden `{0,1}^m` preference vector from
//! unit-cost probes plus a shared billboard, with error within a
//! constant factor of its community's diameter after polylogarithmically
//! many rounds (Theorem 1.1).
//!
//! Algorithm map (paper figure → module):
//!
//! | Figure | Algorithm | Module |
//! |--------|-----------|--------|
//! | Fig. 1 | main dispatch on known `(α, D)` | [`main_algorithm`] |
//! | Fig. 2 | Zero Radius | [`mod@zero_radius`] |
//! | Fig. 3 | Select | [`select`] |
//! | Fig. 4 | Small Radius | [`mod@small_radius`] |
//! | Fig. 5 | Large Radius | [`mod@large_radius`] |
//! | Fig. 6 | Coalesce | [`mod@coalesce`] |
//! | Fig. 7 | RSelect | [`mod@rselect`] |
//! | §6     | unknown `D` / anytime unknown `α` | [`unknown`] |
//!
//! All constants are tunable through [`Params`]; [`Params::theory`]
//! matches the paper's literal constants, [`Params::practical`] scales
//! them down for laptop-size experiments.

#![forbid(unsafe_code)]

pub mod coalesce;
pub mod communities;
pub mod large_radius;
pub mod lockstep;
pub mod main_algorithm;
pub mod params;
pub mod rselect;
pub mod select;
pub mod small_radius;
pub mod unknown;
pub mod value;
pub mod zero_radius;

pub use coalesce::{coalesce, coalesce_nonempty};
pub use communities::{community_hierarchy, discover_communities, Clustering, DiscoveredCommunity};
pub use large_radius::{large_radius, LrOutput};
pub use lockstep::{lockstep_zero_radius, LockstepResult};
pub use main_algorithm::{reconstruct_known, Branch, Reconstruction};
pub use params::Params;
pub use rselect::{rselect, rselect_bits, RSelectResult};
pub use select::{select_bits, select_rows, select_ternary, select_values, SelectResult};
pub use small_radius::{small_radius, SrOutput};
pub use unknown::{
    anytime, anytime_known_d, d_grid, reconstruct_unknown_d, AnytimeReport, PhaseReport,
    UnknownDResult,
};
pub use value::Value;
pub use zero_radius::{zero_radius, BinarySpace, ObjectSpace, ZrOutput};
