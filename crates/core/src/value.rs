//! The abstract value domain of Algorithm Zero Radius.
//!
//! The paper generalizes Zero Radius beyond binary grades: "the set of
//! allowed values for an object is not necessarily binary" (§3.1). In
//! Large Radius, an "object" is a whole object subset `O_ℓ` and its
//! value is an index into the Coalesce candidate set `B_ℓ`. The [`Value`]
//! trait is the bound every such domain must satisfy: cloneable,
//! comparable (for deterministic tie-breaking), hashable (for vote
//! tallies) and thread-safe (players run in parallel).

use std::fmt::Debug;
use std::hash::Hash;

/// Marker trait for Zero Radius value domains (auto-implemented).
pub trait Value: Clone + Eq + Ord + Hash + Send + Sync + Debug {}

impl<T: Clone + Eq + Ord + Hash + Send + Sync + Debug> Value for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_value<T: Value>() {}

    #[test]
    fn standard_domains_are_values() {
        assert_value::<bool>();
        assert_value::<u32>();
        assert_value::<tmwia_model::BitVec>();
        assert_value::<Vec<bool>>();
    }
}
