//! Interprocedural fixtures: each call-graph rule gets a miniature
//! multi-file workspace materialised in a temp directory and checked
//! end-to-end through [`check_workspace`], with exact (rule, file,
//! call-chain) assertions. The violating fixtures pin the true
//! positives the rules exist for (helper-laundered truth access,
//! transitive wall clocks, panics reachable from serving entries,
//! mutate-before-fsync); the clean fixtures pin the false positives
//! the analysis must *not* produce (boundary cuts, trait-object
//! dispatch landing on clean impls, checked error paths).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tmwia_lint::{check_workspace, Config, Finding};

static NEXT: AtomicUsize = AtomicUsize::new(0);

/// Write `files` (workspace-relative path, contents) under a fresh
/// temp root and return it.
fn materialize(files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "tmwia-lint-interproc-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, src) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, src).unwrap();
    }
    root
}

fn check(files: &[(&str, &str)], config_toml: &str) -> Vec<Finding> {
    let root = materialize(files);
    let config = Config::parse(config_toml).expect("fixture config parses");
    let findings = check_workspace(&root, &config);
    let _ = std::fs::remove_dir_all(&root);
    findings
}

/// `(func, path)` pairs of a finding's chain, for exact comparison.
fn chain_of(f: &Finding) -> Vec<(String, String)> {
    f.chain
        .iter()
        .map(|h| (h.func.clone(), h.path.clone()))
        .collect()
}

const ENGINE: &str = r#"pub struct PrefMatrix;
impl PrefMatrix {
    pub fn value(&self, i: usize, j: usize) -> bool {
        i == j
    }
}
pub struct PlayerHandle;
impl PlayerHandle {
    pub fn probe(&self, j: usize) -> bool {
        j == 0
    }
}
"#;

/// A helper in an out-of-scope crate reads the truth on behalf of an
/// in-scope algorithm — the laundering pattern the file-local
/// oracle-isolation rule cannot see.
#[test]
fn laundered_truth_access_is_caught_across_crates() {
    let findings = check(
        &[
            ("crates/engine/src/lib.rs", ENGINE),
            (
                "crates/engine/src/launder.rs",
                "pub fn shortcut(m: &PrefMatrix, i: usize, j: usize) -> bool {\n    m.value(i, j)\n}\n",
            ),
            (
                "crates/algo/src/lib.rs",
                "pub fn decide(m: &PrefMatrix, h: &PlayerHandle) -> bool {\n    let a = launder::shortcut(m, 2, 2);\n    let b = h.probe(0);\n    a && b\n}\n",
            ),
        ],
        r#"
[rules.oracle-taint]
include = ["crates/algo/src"]
source = ["PrefMatrix::value"]
boundary = ["PlayerHandle::probe"]
"#,
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(
        (f.rule.as_str(), f.path.as_str(), f.line),
        ("oracle-taint", "crates/algo/src/lib.rs", 2),
        "anchored at the laundered call, not the probe"
    );
    assert_eq!(
        chain_of(f),
        vec![
            ("decide".to_string(), "crates/algo/src/lib.rs".to_string()),
            (
                "shortcut".to_string(),
                "crates/engine/src/launder.rs".to_string()
            ),
            (
                "PrefMatrix::value".to_string(),
                "crates/engine/src/lib.rs".to_string()
            ),
        ]
    );
}

/// Trait-object dispatch fans out to every same-named method; when the
/// impls only use the sanctioned probe the boundary must cut the taint
/// — a `dyn` call site alone is not a violation.
#[test]
fn trait_object_dispatch_through_the_boundary_is_clean() {
    let findings = check(
        &[
            ("crates/engine/src/lib.rs", ENGINE),
            (
                "crates/algo/src/lib.rs",
                r#"pub trait Scorer {
    fn score(&self, j: usize) -> bool;
}
pub struct Probing;
impl Scorer for Probing {
    fn score(&self, j: usize) -> bool {
        PlayerHandle.probe(j)
    }
}
pub fn decide_dyn(s: &dyn Scorer) -> bool {
    s.score(3)
}
"#,
            ),
        ],
        r#"
[rules.oracle-taint]
include = ["crates/algo/src"]
source = ["PrefMatrix::value"]
boundary = ["PlayerHandle::probe"]
"#,
    );
    assert_eq!(
        findings,
        vec![],
        "boundary must cut taint through dyn dispatch"
    );
}

/// A wall clock two hops below the entry point: invisible to the
/// file-local determinism rule when the helper lives outside its
/// scope, caught by reachability.
#[test]
fn determinism_reach_flags_transitive_wall_clock() {
    let findings = check(
        &[(
            "crates/svc/src/lib.rs",
            r#"pub struct Engine;
impl Engine {
    pub fn tick(&self) -> u64 {
        helper()
    }
    pub fn calm(&self) -> u64 {
        7
    }
}
fn helper() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
"#,
        )],
        r#"
[rules.determinism-reach]
include = ["crates/svc/src"]
entry = ["Engine::tick", "Engine::calm"]
"#,
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(
        (f.rule.as_str(), f.path.as_str(), f.line),
        ("determinism-reach", "crates/svc/src/lib.rs", 4),
        "anchored at the entry's first hop; `calm` stays clean"
    );
    assert_eq!(
        chain_of(f),
        vec![
            (
                "Engine::tick".to_string(),
                "crates/svc/src/lib.rs".to_string()
            ),
            ("helper".to_string(), "crates/svc/src/lib.rs".to_string()),
        ]
    );
    assert_eq!(
        f.chain.last().unwrap().line,
        11,
        "last hop points at the sink"
    );
}

/// A locally-suppressed panic is still a sink for reachability: the
/// file-local allow justifies the panic where it is, not its
/// reachability from a serving entry. The checked sibling path shows
/// the rule distinguishes real sinks from `unwrap_or`-style idioms.
#[test]
fn panic_reach_flags_suppressed_local_panic_but_not_checked_paths() {
    let findings = check(
        &[(
            "crates/svc/src/lib.rs",
            r#"pub struct Server;
impl Server {
    pub fn handle(&self, v: &[u8]) -> u8 {
        first(v)
    }
    pub fn safe(&self, v: &[u8]) -> u8 {
        checked(v)
    }
}
fn first(v: &[u8]) -> u8 {
    // lint:allow(panic-hygiene) fixture: precondition documented at the call sites
    *v.first().unwrap()
}
fn checked(v: &[u8]) -> u8 {
    v.first().copied().unwrap_or(0)
}
"#,
        )],
        r#"
[rules.panic-hygiene]
include = ["crates/svc/src"]

[rules.panic-reach]
include = ["crates/svc/src"]
entry = ["Server::handle", "Server::safe"]
"#,
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(
        (f.rule.as_str(), f.path.as_str(), f.line),
        ("panic-reach", "crates/svc/src/lib.rs", 4)
    );
    assert_eq!(
        chain_of(f),
        vec![
            (
                "Server::handle".to_string(),
                "crates/svc/src/lib.rs".to_string()
            ),
            ("first".to_string(), "crates/svc/src/lib.rs".to_string()),
        ]
    );
    assert_eq!(
        f.chain.last().unwrap().line,
        12,
        "last hop points at the unwrap"
    );
}

/// Write-ahead ordering: a writer-state mutation between the buffered
/// write and its fsync is flagged; the properly-ordered sibling is not.
#[test]
fn wal_protocol_flags_mutation_between_write_and_fsync() {
    let findings = check(
        &[(
            "crates/store/src/wal.rs",
            r#"impl Writer {
    pub fn bad(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.file.write_all(buf)?;
        self.offset += buf.len() as u64;
        self.file.sync_data()
    }
    pub fn good(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.file.write_all(buf)?;
        self.file.sync_data()?;
        self.offset += buf.len() as u64;
        Ok(())
    }
}
"#,
        )],
        r#"
[rules.wal-protocol]
include = ["crates/store/src/wal.rs"]
"#,
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(
        (f.rule.as_str(), f.path.as_str(), f.line),
        ("wal-protocol", "crates/store/src/wal.rs", 4),
        "only the mutation before the fsync is flagged"
    );
}
