//! Fixture-driven integration tests: each rule family has a violating
//! and a clean sample under `tests/fixtures/`, and the checker must
//! report exactly the expected (rule, line) pairs — no more, no fewer.
//! The fixture tree is excluded from the workspace config, so the
//! repo's own `tmwia-lint check` never sees it; these tests scan it
//! under in-scope pseudo-paths (and through the real binary with a
//! dedicated config) instead.

use std::path::PathBuf;
use std::process::Command;
use tmwia_lint::{scan_source, Config};

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_root() -> PathBuf {
    crate_dir()
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// Scan a fixture under a pseudo-path inside `dir`, so each test can
/// pick the scope (rule set) the fixture is meant to exercise.
fn scan_at(dir: &str, name: &str) -> Vec<(String, u32)> {
    let src = std::fs::read_to_string(crate_dir().join("tests/fixtures").join(name))
        .expect("fixture readable");
    let mut found: Vec<(String, u32)> =
        scan_source(&format!("{dir}/{name}"), &src, &Config::default_workspace())
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect();
    found.sort();
    found
}

/// Scan a fixture under a pseudo-path inside `crates/core/src`, which
/// the default config covers with all four original rule families.
fn scan(name: &str) -> Vec<(String, u32)> {
    scan_at("crates/core/src", name)
}

fn all_rule(rule: &str, lines: &[u32]) -> Vec<(String, u32)> {
    lines.iter().map(|&l| (rule.to_string(), l)).collect()
}

#[test]
fn oracle_isolation_fixture_exact_findings() {
    // line 4: `.truth()`, line 5: `.probe_fresh()`, line 6: `PrefMatrix`.
    assert_eq!(
        scan("oracle_violation.rs"),
        all_rule("oracle-isolation", &[4, 5, 6])
    );
    assert_eq!(scan("oracle_clean.rs"), vec![]);
}

#[test]
fn determinism_fixture_exact_findings() {
    // lines 3/8: `HashMap`, lines 4/7: `Instant`.
    assert_eq!(
        scan("determinism_violation.rs"),
        all_rule("determinism", &[3, 4, 7, 8])
    );
    assert_eq!(scan("determinism_clean.rs"), vec![]);
}

#[test]
fn unsafe_hygiene_fixture_exact_findings() {
    // line 5: `unsafe` with no adjacent SAFETY comment.
    assert_eq!(
        scan("unsafe_violation.rs"),
        all_rule("unsafe-hygiene", &[5])
    );
    assert_eq!(scan("unsafe_clean.rs"), vec![]);
}

#[test]
fn panic_hygiene_fixture_exact_findings() {
    // line 4: `.unwrap()`, line 6: `panic!`.
    assert_eq!(
        scan("panic_violation.rs"),
        all_rule("panic-hygiene", &[4, 6])
    );
    assert_eq!(scan("panic_clean.rs"), vec![]);
}

#[test]
fn obs_timing_fixture_exact_findings() {
    // Scanned under `crates/obs/src`, where both obs-timing and
    // determinism apply. Line 2: `install_clock` call; line 3:
    // `SystemTime` (flagged by both rules).
    assert_eq!(
        scan_at("crates/obs/src", "obs_timing_violation.rs"),
        vec![
            ("determinism".to_string(), 3),
            ("obs-timing".to_string(), 2),
            ("obs-timing".to_string(), 3),
        ]
    );
    // The clean fixture *defines* `install_clock` — definitions are
    // not calls, so the boundary rule stays quiet.
    assert_eq!(scan_at("crates/obs/src", "obs_timing_clean.rs"), vec![]);
}

#[test]
fn suppressed_fixture_is_clean() {
    assert_eq!(scan("suppressed_clean.rs"), vec![]);
}

/// The checked-in `tmwia-lint.toml` and the built-in fallback scopes
/// must agree, so a missing config file cannot silently weaken CI.
#[test]
fn workspace_config_matches_builtin_default() {
    let text = std::fs::read_to_string(workspace_root().join("tmwia-lint.toml"))
        .expect("workspace config present");
    assert_eq!(
        Config::parse(&text).expect("config parses"),
        Config::default_workspace()
    );
}

/// The real binary exits 0 on the actual workspace (acceptance: the
/// lint lands green) …
#[test]
fn binary_exits_zero_on_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_tmwia-lint"))
        .arg("check")
        .arg("--root")
        .arg(workspace_root())
        .arg("--quiet")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "workspace not clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// … and exits non-zero when pointed at the violating fixtures.
#[test]
fn binary_exits_nonzero_on_violating_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_tmwia-lint"))
        .arg("check")
        .arg("--root")
        .arg(crate_dir())
        .arg("--config")
        .arg(crate_dir().join("tests/fixture_config.toml"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "expected findings exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "oracle-isolation",
        "determinism",
        "unsafe-hygiene",
        "panic-hygiene",
        "obs-timing",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

/// Acceptance check from the issue: a deliberately-introduced `truth()`
/// call in `crates/core` is caught by oracle-isolation.
#[test]
fn injected_truth_call_in_core_is_caught() {
    let src = "pub fn cheat(e: &ProbeEngine) -> bool { e.truth().value(0, 0) }\n";
    let findings = scan_source(
        "crates/core/src/cheat.rs",
        src,
        &Config::default_workspace(),
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "oracle-isolation" && f.line == 1),
        "{findings:?}"
    );
}

/// Pseudo-paths outside every scope produce nothing even for violating
/// content (the fixture tree itself is excluded in the default config).
#[test]
fn excluded_fixture_tree_is_not_scanned() {
    let src = std::fs::read_to_string(crate_dir().join("tests/fixtures/panic_violation.rs"))
        .expect("fixture readable");
    let findings = scan_source(
        "crates/lint/tests/fixtures/panic_violation.rs",
        &src,
        &Config::default_workspace(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}
