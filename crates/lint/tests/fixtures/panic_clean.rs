//! Fixture: failures reported through Option; tests may unwrap.

pub fn first(xs: &[u8]) -> Option<u8> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[3]).unwrap(), 3);
    }
}
