//! Fixture: oracle-isolation violations (one per line below).

pub fn peek(engine: &Engine, handle: &Handle<'_>) -> bool {
    let t = engine.truth();
    let fresh = handle.probe_fresh(0);
    let m = PrefMatrix::identity(1);
    t.value(0, 0) && fresh && m.n() == 1
}
