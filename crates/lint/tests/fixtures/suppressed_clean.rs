//! Fixture: a finding silenced by an inline suppression with a reason.

pub fn last(xs: &[u8]) -> u8 {
    // lint:allow(panic-hygiene) fixture demonstrating suppression syntax
    xs.last().copied().unwrap()
}
