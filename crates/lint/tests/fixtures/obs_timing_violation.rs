pub fn bad_export(reg: &Registry) -> u64 {
    reg.install_clock(now_micros);
    let t = std::time::SystemTime::now();
    t.duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}
