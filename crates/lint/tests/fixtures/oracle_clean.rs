//! Fixture: sanctioned probe usage — pays the unit cost per read.

pub fn sample(handle: &Handle<'_>) -> bool {
    handle.probe(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn truth_reads_in_tests_are_sanctioned(engine: &Engine) {
        let _ = engine.truth();
    }
}
