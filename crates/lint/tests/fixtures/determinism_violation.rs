//! Fixture: nondeterminism sources on an algorithm path.

use std::collections::HashMap;
use std::time::Instant;

pub fn tally(xs: &[u32]) -> usize {
    let started = Instant::now();
    let mut seen: HashMap<u32, u32> = Default::default();
    for &x in xs {
        *seen.entry(x).or_default() += 1;
    }
    let _ = started.elapsed();
    seen.len()
}
