//! Fixture: aborting macros and unwraps in library code.

pub fn first(xs: &[u8]) -> u8 {
    let head = xs.first().unwrap();
    if *head > 250 {
        panic!("too big");
    }
    *head
}
