pub fn stamp(clock: Option<fn() -> u64>) -> u64 {
    clock.map(|c| c()).unwrap_or(0)
}

pub struct Registry;

impl Registry {
    pub fn install_clock(&self, _clock: fn() -> u64) {}
}
