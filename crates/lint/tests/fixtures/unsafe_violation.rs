//! Fixture: `unsafe` with no adjacent safety argument.

pub fn read_first(xs: &[u8]) -> u8 {
    let p = xs.as_ptr();
    unsafe { *p }
}
