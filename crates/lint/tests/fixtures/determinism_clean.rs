//! Fixture: ordered containers and seeded randomness only.

use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *seen.entry(x).or_default() += 1;
    }
    seen.len()
}
