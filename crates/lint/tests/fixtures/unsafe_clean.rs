//! Fixture: `unsafe` with its safety argument stated adjacent.

pub fn read_first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds; `&[u8]` guarantees alignment.
    unsafe { *xs.as_ptr() }
}
