//! `tmwia-lint` — run the workspace invariant checker.
//!
//! ```text
//! tmwia-lint check [--root DIR] [--config FILE] [--quiet]
//!                  [--format text|json] [--budget-ms N]
//! tmwia-lint rules
//! ```

use std::path::PathBuf;
use tmwia_lint::{check_workspace, findings_to_json, rules, Config};

const USAGE: &str = "\
tmwia-lint — workspace invariant checker (probe accounting, determinism,
unsafe/panic hygiene, call-graph taint/reachability)

USAGE:
  tmwia-lint check [--root DIR] [--config FILE] [--quiet]
                   [--format text|json] [--budget-ms N]
      Scan the workspace; print findings; exit 1 if any remain.
      --root defaults to the nearest ancestor containing tmwia-lint.toml
      (or the current directory); --config defaults to ROOT/tmwia-lint.toml,
      falling back to the built-in default scopes.
      --format json writes a machine-readable report to stdout (the CI
      artifact); text (default) prints one finding per line with its
      call-chain trace.
      --budget-ms N exits 3 if the full analysis takes longer than N
      milliseconds (CI performance gate).
  tmwia-lint rules
      List rule ids and what they enforce.

Suppress a finding with `// lint:allow(<rule>) reason` on the offending
line or the line above. The reason is mandatory; unused suppressions are
reported as findings.
";

fn run() -> Result<i32, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next();
    match cmd.as_deref() {
        Some("check") => {}
        Some("rules") => {
            for (id, what) in rules::RULES {
                println!("{id:>17}  {what}");
            }
            return Ok(0);
        }
        Some("help") | None => {
            print!("{USAGE}");
            return Ok(0);
        }
        Some(other) => return Err(format!("unknown command '{other}'\n{USAGE}")),
    }

    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut json = false;
    let mut budget_ms: Option<u64> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root expects a directory")?,
                ));
            }
            "--config" => {
                config_path = Some(PathBuf::from(args.next().ok_or("--config expects a file")?));
            }
            "--quiet" => quiet = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--budget-ms" => {
                budget_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--budget-ms expects a millisecond count")?,
                );
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_root().ok_or("cannot determine workspace root (no tmwia-lint.toml found)")?,
    };
    let config_path = config_path.unwrap_or_else(|| root.join("tmwia-lint.toml"));
    let config = match std::fs::read_to_string(&config_path) {
        Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?,
        Err(_) => Config::default_workspace(),
    };

    // lint:allow(determinism) wall-clock here measures the lint run itself (CI budget gate), not an algorithm path
    let started = std::time::Instant::now();
    let findings = check_workspace(&root, &config);
    let elapsed = started.elapsed();

    if json {
        print!("{}", findings_to_json(&findings));
    } else if !quiet {
        for f in &findings {
            println!("{f}");
        }
    }
    if let Some(budget) = budget_ms {
        let took = elapsed.as_millis() as u64;
        if took > budget {
            eprintln!("tmwia-lint: analysis took {took}ms, over the {budget}ms budget");
            return Ok(3);
        }
    }
    if findings.is_empty() {
        if !quiet && !json {
            println!("tmwia-lint: clean ({} rules)", config.rules.len());
        }
        Ok(0)
    } else {
        if !json {
            println!("tmwia-lint: {} finding(s)", findings.len());
        }
        Ok(1)
    }
}

/// Walk up from the current directory to the first `tmwia-lint.toml`
/// (so `cargo run -p tmwia-lint` works from any workspace subdir);
/// fall back to the current directory if the config is absent.
fn find_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join("tmwia-lint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return Some(cwd.clone()),
        }
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
