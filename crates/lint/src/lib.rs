//! # tmwia-lint
//!
//! Offline workspace invariant checker for the tmwia reproduction.
//! Every quantitative claim the repo reproduces is a probe-cost bound
//! (Theorems 1–5 of the SPAA'06 paper), so the things a reviewer must
//! never miss — an algorithm reading ground truth without paying a
//! probe, a `HashMap` iteration leaking scheduling order into a pinned
//! experiment table, an unaudited `unsafe`, a library panic — are
//! machine-checked here instead.
//!
//! Four rule families (see [`rules::RULES`]):
//!
//! * `oracle-isolation` — `.truth()`, raw `PrefMatrix`, and
//!   `.probe_fresh()` are forbidden in algorithm crates outside tests.
//! * `determinism` — no `HashMap`/`HashSet`, wall clocks, or unseeded
//!   RNGs in fixed-seed algorithm paths.
//! * `unsafe-hygiene` — every `unsafe` carries an adjacent
//!   `// SAFETY:` comment.
//! * `panic-hygiene` — no `unwrap`/`expect`/`panic!`-family macros in
//!   library code outside tests.
//!
//! Findings are suppressed inline with `// lint:allow(<rule>) reason`
//! on the offending line or the line above; the reason is mandatory,
//! and stale suppressions are themselves findings. Scoping lives in
//! `tmwia-lint.toml` at the workspace root (a hand-rolled TOML subset
//! — the tool has zero dependencies, per the `shims/` policy).
//!
//! Run as `cargo run -p tmwia-lint -- check`; CI enforces a clean exit.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use config::{Config, ConfigError};
pub use scan::{check_workspace, scan_source, Finding};
