//! # tmwia-lint
//!
//! Offline workspace invariant checker for the tmwia reproduction.
//! Every quantitative claim the repo reproduces is a probe-cost bound
//! (Theorems 1–5 of the SPAA'06 paper), so the things a reviewer must
//! never miss — an algorithm reading ground truth without paying a
//! probe, a `HashMap` iteration leaking scheduling order into a pinned
//! experiment table, an unaudited `unsafe`, a library panic — are
//! machine-checked here instead.
//!
//! File-local rule families (see [`rules::RULES`]):
//!
//! * `oracle-isolation` — `.truth()`, raw `PrefMatrix`, and
//!   `.probe_fresh()` are forbidden in algorithm crates outside tests.
//! * `determinism` — no `HashMap`/`HashSet`, wall clocks, or unseeded
//!   RNGs in fixed-seed algorithm paths.
//! * `unsafe-hygiene` — every `unsafe` carries an adjacent
//!   `// SAFETY:` comment.
//! * `panic-hygiene` — no `unwrap`/`expect`/`panic!`-family macros in
//!   library code outside tests.
//!
//! On top of those, a static-analysis pass — item-level parser
//! ([`parse`]), workspace symbol resolution ([`resolve`]), and a
//! conservative call graph ([`callgraph`]) — drives four
//! interprocedural rules with call-chain traces:
//!
//! * `oracle-taint` — no call chain from an algorithm crate reaches
//!   the hidden truth except through the paid probe (catches
//!   helper-function laundering).
//! * `determinism-reach` — experiment entry points and `Service::tick`
//!   must not transitively touch wall clocks, unseeded RNGs, or
//!   unordered containers.
//! * `panic-reach` — serving hot paths must not transitively reach
//!   `unwrap`/`expect`/`panic!`.
//! * `wal-protocol` — inside `wal.rs`, state mutation is ordered
//!   strictly after the fsync of the buffered append.
//!
//! Findings are suppressed inline with `// lint:allow(<rule>) reason`
//! on the offending line or the line above; the reason is mandatory,
//! and stale suppressions are themselves findings — in every file, even
//! ones no rule currently covers. Scoping lives in `tmwia-lint.toml`
//! at the workspace root (a hand-rolled TOML subset — the tool's only
//! dependency is the vendored rayon shim, per the `shims/` policy).
//!
//! Run as `cargo run -p tmwia-lint -- check` (`--format json` for the
//! CI artifact); CI enforces a clean exit.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parse;
pub mod resolve;
pub mod rules;
pub mod scan;

pub use config::{Config, ConfigError};
pub use scan::{check_workspace, findings_to_json, scan_source, Finding};
