//! Per-file scanning: test-span masking, suppression handling, and the
//! workspace walk.

use crate::config::Config;
use crate::lexer::{lex, Tok, Token};
use crate::rules::{self, RawFinding, Sig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A reported, unsuppressed violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`rules::RULES`], or `suppression` for misuse
    /// of the suppression mechanism itself).
    pub rule: String,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed `// lint:allow(<rule>) reason` comment.
#[derive(Debug)]
struct Suppression {
    rule: String,
    line: u32,
    has_reason: bool,
    used: bool,
}

fn parse_suppressions(toks: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        let Tok::LineComment(text) = &t.kind else {
            continue;
        };
        let Some(rest) = text.trim().strip_prefix("lint:allow(") else {
            continue;
        };
        let Some((rule, reason)) = rest.split_once(')') else {
            continue;
        };
        let reason = reason.trim_start_matches([':', '-', ' ']);
        out.push(Suppression {
            rule: rule.trim().to_string(),
            line: t.line,
            has_reason: !reason.trim().is_empty(),
            used: false,
        });
    }
    out
}

/// Mark every token inside test-only items: an item (or module)
/// annotated `#[cfg(test)]` or `#[test]`, through its closing brace or
/// semicolon. `#[cfg(not(test))]` and other negations stay unmarked.
fn test_mask(toks: &[Token]) -> Vec<bool> {
    let sig: Vec<(usize, &Token)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_)))
        .collect();
    let mut mask = vec![false; toks.len()];
    let punct = |i: usize| -> Option<char> {
        match sig.get(i)?.1.kind {
            Tok::Punct(c) => Some(c),
            _ => None,
        }
    };

    let mut i = 0usize;
    while i < sig.len() {
        // Attribute? `#[ … ]` (skip inner attributes `#![…]`).
        if punct(i) == Some('#') && punct(i + 1) == Some('[') {
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < sig.len() && depth > 0 {
                match sig[j].1.kind {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(ref s) => idents.push(s),
                    _ => {}
                }
                j += 1;
            }
            let first = idents.first().copied();
            let is_test_attr = match first {
                Some("test") => idents.len() == 1,
                Some("cfg") => idents.contains(&"test") && !idents.contains(&"not"),
                _ => false,
            };
            if is_test_attr {
                // Consume any further attributes, then the item itself.
                let mut k = j;
                while punct(k) == Some('#') && punct(k + 1) == Some('[') {
                    let mut d = 1usize;
                    k += 2;
                    while k < sig.len() && d > 0 {
                        match sig[k].1.kind {
                            Tok::Punct('[') => d += 1,
                            Tok::Punct(']') => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // The item ends at its outermost `{…}` block, or at a
                // `;` that appears before any block opens.
                let mut end = k;
                let mut brace = 0usize;
                while end < sig.len() {
                    match sig[end].1.kind {
                        Tok::Punct('{') => brace += 1,
                        Tok::Punct('}') => {
                            brace -= 1;
                            if brace == 0 {
                                break;
                            }
                        }
                        Tok::Punct(';') if brace == 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                let lo = sig[attr_start].0;
                let hi = sig.get(end).map_or(toks.len() - 1, |s| s.0);
                for slot in &mut mask[lo..=hi] {
                    *slot = true;
                }
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scan one file's source under `config`. `path` must be the
/// workspace-relative, `/`-separated location — rule scoping and
/// reported findings both use it verbatim.
pub fn scan_source(path: &str, src: &str, config: &Config) -> Vec<Finding> {
    let active = config.rules_for(path);
    if active.is_empty() {
        return Vec::new();
    }
    let toks = lex(src);
    let mask = test_mask(&toks);
    let sig = Sig::new(&toks);
    let mut raw: Vec<RawFinding> = Vec::new();
    for rule in &active {
        match *rule {
            "oracle-isolation" => rules::oracle_isolation(&sig, &mask, &mut raw),
            "determinism" => rules::determinism(&sig, &mask, &mut raw),
            "unsafe-hygiene" => rules::unsafe_hygiene(&toks, &sig, &mask, &mut raw),
            "panic-hygiene" => rules::panic_hygiene(&sig, &mask, &mut raw),
            other => raw.push(RawFinding {
                rule: "suppression",
                line: 1,
                message: format!("config names unknown rule '{other}'"),
            }),
        }
    }

    let mut supps = parse_suppressions(&toks);
    // Index: (rule, line) → suppression slot.
    let mut by_key: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for (idx, s) in supps.iter().enumerate() {
        by_key.insert((s.rule.clone(), s.line), idx);
    }

    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let hit = by_key
            .get(&(f.rule.to_string(), f.line))
            .or_else(|| by_key.get(&(f.rule.to_string(), f.line.saturating_sub(1))))
            .copied();
        match hit {
            Some(idx) if supps[idx].has_reason => {
                supps[idx].used = true;
            }
            Some(idx) => {
                supps[idx].used = true;
                out.push(Finding {
                    path: path.to_string(),
                    line: supps[idx].line,
                    rule: "suppression".into(),
                    message: format!(
                        "lint:allow({}) must state a reason after the closing paren",
                        supps[idx].rule
                    ),
                });
            }
            None => out.push(Finding {
                path: path.to_string(),
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message,
            }),
        }
    }
    for s in &supps {
        if !s.used {
            out.push(Finding {
                path: path.to_string(),
                line: s.line,
                rule: "suppression".into(),
                message: format!(
                    "lint:allow({}) suppresses nothing here (stale, misplaced, or the rule \
                     is out of scope for this file)",
                    s.rule
                ),
            });
        }
    }
    out.sort();
    out
}

/// Recursively collect `.rs` files under `root`, returning
/// workspace-relative `/`-separated paths in sorted (deterministic)
/// order. Excluded prefixes are pruned during the walk.
fn collect_rs_files(root: &Path, rel: &str, config: &Config, out: &mut Vec<String>) {
    if config.is_excluded(rel) && !rel.is_empty() {
        return;
    }
    let dir = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut names: Vec<(bool, String)> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let is_dir = e.file_type().ok()?.is_dir();
            Some((is_dir, name))
        })
        .collect();
    names.sort();
    for (is_dir, name) in names {
        let child = if rel.is_empty() {
            name.clone()
        } else {
            format!("{rel}/{name}")
        };
        if is_dir {
            collect_rs_files(root, &child, config, out);
        } else if name.ends_with(".rs") && !config.is_excluded(&child) {
            out.push(child);
        }
    }
}

/// Scan the whole workspace at `root` under `config`. Files a rule's
/// scope does not cover are skipped entirely; IO failures on individual
/// files are reported as findings rather than aborting the run.
pub fn check_workspace(root: &Path, config: &Config) -> Vec<Finding> {
    let mut prefixes: Vec<String> = config
        .rules
        .values()
        .flat_map(|s| s.include.iter().cloned())
        .collect();
    prefixes.sort();
    prefixes.dedup();
    // Drop prefixes shadowed by a shorter one (e.g. `crates/core/src`
    // under `crates`) so files are visited once.
    let roots: Vec<String> = prefixes
        .iter()
        .filter(|p| {
            !prefixes
                .iter()
                .any(|q| q.as_str() != p.as_str() && p.starts_with(&format!("{q}/")))
        })
        .cloned()
        .collect();

    let mut files = Vec::new();
    for prefix in &roots {
        let target = root.join(prefix.replace('/', std::path::MAIN_SEPARATOR_STR));
        if target.is_file() {
            files.push(prefix.clone());
        } else {
            collect_rs_files(root, prefix, config, &mut files);
        }
    }
    files.sort();
    files.dedup();

    let mut findings = Vec::new();
    for rel in &files {
        let abs: PathBuf = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        match std::fs::read_to_string(&abs) {
            Ok(src) => findings.extend(scan_source(rel, &src, config)),
            Err(e) => findings.push(Finding {
                path: rel.clone(),
                line: 0,
                rule: "suppression".into(),
                message: format!("unreadable file: {e}"),
            }),
        }
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default_workspace()
    }

    #[test]
    fn truth_call_in_core_is_caught() {
        let src = "pub fn evil(e: &ProbeEngine) -> bool { e.truth().value(0, 0) }\n";
        let f = scan_source("crates/core/src/evil.rs", src, &cfg());
        assert!(
            f.iter()
                .any(|f| f.rule == "oracle-isolation" && f.line == 1),
            "{f:?}"
        );
    }

    #[test]
    fn truth_call_in_core_tests_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t(e: &ProbeEngine) { e.truth(); }\n}\n";
        let f = scan_source("crates/core/src/ok.rs", src, &cfg());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn suppression_with_reason_silences_and_is_used() {
        let src = "// lint:allow(oracle-isolation) Thm 3.2 remark sanctions strict re-pay\n\
                   fn f(h: &PlayerHandle) { h.probe_fresh(0); }\n";
        let f = scan_source("crates/core/src/s.rs", src, &cfg());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn suppression_without_reason_is_itself_a_finding() {
        let src = "// lint:allow(oracle-isolation)\n\
                   fn f(h: &PlayerHandle) { h.probe_fresh(0); }\n";
        let f = scan_source("crates/core/src/s.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "suppression");
    }

    #[test]
    fn stale_suppression_is_reported() {
        let src = "// lint:allow(panic-hygiene) nothing panics below\nfn f() {}\n";
        let f = scan_source("crates/core/src/s.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let f = scan_source("crates/model/src/x.rs", src, &cfg());
        assert!(f.iter().any(|f| f.rule == "panic-hygiene"), "{f:?}");
    }

    #[test]
    fn long_safety_block_reaching_the_window_counts() {
        // The SAFETY: marker is 10 lines above the `unsafe`, beyond the
        // lookback window — but the comment run is contiguous down to
        // the line before it, so it must be accepted.
        let mut src = String::from("// SAFETY: (1) precondition one holds because\n");
        for i in 0..9 {
            src.push_str(&format!("// continued explanation line {i}\n"));
        }
        src.push_str("fn f() { unsafe { core::hint::unreachable_unchecked() } }\n");
        let f = scan_source("crates/model/src/u.rs", &src, &cfg());
        assert!(!f.iter().any(|f| f.rule == "unsafe-hygiene"), "{f:?}");
    }

    #[test]
    fn far_safety_comment_with_gap_does_not_count() {
        let src = "// SAFETY: about something else entirely\n\
                   fn g() {}\n\n\n\n\n\n\n\n\n\n\n\
                   fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let f = scan_source("crates/model/src/u.rs", src, &cfg());
        assert!(f.iter().any(|f| f.rule == "unsafe-hygiene"), "{f:?}");
    }

    #[test]
    fn out_of_scope_paths_produce_nothing() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(scan_source("crates/bench/src/lib.rs", src, &cfg()).is_empty());
        assert!(scan_source("tests/end_to_end.rs", src, &cfg()).is_empty());
    }
}
