//! The scan pipeline: per-file lexing/parsing/token rules (in
//! parallel), the workspace call-graph pass, suppression handling, and
//! output rendering (text and JSON).

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::{lex, Tok, Token};
use crate::parse::{parse_file, FileAst};
use crate::resolve::Workspace;
use crate::rules::{self, ChainHop, RawFinding, Sig, WsFinding};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Rules that need the whole-workspace call graph; they are skipped by
/// the per-file dispatch and run once after every file is parsed.
const GRAPH_RULES: &[&str] = &["oracle-taint", "determinism-reach", "panic-reach"];

/// A reported, unsuppressed violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`rules::RULES`], or `suppression` for misuse
    /// of the suppression mechanism itself).
    pub rule: String,
    /// Explanation.
    pub message: String,
    /// Call-chain trace (interprocedural rules only).
    pub chain: Vec<ChainHop>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )?;
        if !self.chain.is_empty() {
            let trace: Vec<String> = self
                .chain
                .iter()
                .map(|h| {
                    if h.line == 0 {
                        h.func.clone()
                    } else {
                        format!("{} ({}:{})", h.func, h.path, h.line)
                    }
                })
                .collect();
            write!(f, "\n    chain: {}", trace.join(" → "))?;
        }
        Ok(())
    }
}

/// Render findings as the machine-readable JSON report CI archives.
/// Hand-rolled (no serde under the shims policy); strings are escaped
/// per RFC 8259.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!(
            "\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"",
            json_esc(&f.path),
            f.line,
            json_esc(&f.rule),
            json_esc(&f.message)
        ));
        if !f.chain.is_empty() {
            s.push_str(", \"chain\": [");
            for (j, h) in f.chain.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"fn\": \"{}\", \"path\": \"{}\", \"line\": {}}}",
                    json_esc(&h.func),
                    json_esc(&h.path),
                    h.line
                ));
            }
            s.push(']');
        }
        s.push('}');
    }
    s.push_str(&format!("\n  ],\n  \"count\": {}\n}}\n", findings.len()));
    s
}

fn json_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed `// lint:allow(<rule>) reason` comment.
#[derive(Debug)]
struct Suppression {
    rule: String,
    line: u32,
    has_reason: bool,
    used: bool,
}

fn parse_suppressions(toks: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        let Tok::LineComment(text) = &t.kind else {
            continue;
        };
        let Some(rest) = text.trim().strip_prefix("lint:allow(") else {
            continue;
        };
        let Some((rule, reason)) = rest.split_once(')') else {
            continue;
        };
        let reason = reason.trim_start_matches([':', '-', ' ']);
        out.push(Suppression {
            rule: rule.trim().to_string(),
            line: t.line,
            has_reason: !reason.trim().is_empty(),
            used: false,
        });
    }
    out
}

/// Mark every token inside test-only items: an item (or module)
/// annotated `#[cfg(test)]` or `#[test]`, through its closing brace or
/// semicolon. `#[cfg(not(test))]` and other negations stay unmarked.
pub(crate) fn test_mask(toks: &[Token]) -> Vec<bool> {
    let sig: Vec<(usize, &Token)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_)))
        .collect();
    let mut mask = vec![false; toks.len()];
    let punct = |i: usize| -> Option<char> {
        match sig.get(i)?.1.kind {
            Tok::Punct(c) => Some(c),
            _ => None,
        }
    };

    let mut i = 0usize;
    while i < sig.len() {
        // Attribute? `#[ … ]` (skip inner attributes `#![…]`).
        if punct(i) == Some('#') && punct(i + 1) == Some('[') {
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < sig.len() && depth > 0 {
                match sig[j].1.kind {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(ref s) => idents.push(s),
                    _ => {}
                }
                j += 1;
            }
            let first = idents.first().copied();
            let is_test_attr = match first {
                Some("test") => idents.len() == 1,
                Some("cfg") => idents.contains(&"test") && !idents.contains(&"not"),
                _ => false,
            };
            if is_test_attr {
                // Consume any further attributes, then the item itself.
                let mut k = j;
                while punct(k) == Some('#') && punct(k + 1) == Some('[') {
                    let mut d = 1usize;
                    k += 2;
                    while k < sig.len() && d > 0 {
                        match sig[k].1.kind {
                            Tok::Punct('[') => d += 1,
                            Tok::Punct(']') => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // The item ends at its outermost `{…}` block, or at a
                // `;` that appears before any block opens.
                let mut end = k;
                let mut brace = 0usize;
                while end < sig.len() {
                    match sig[end].1.kind {
                        Tok::Punct('{') => brace += 1,
                        Tok::Punct('}') => {
                            brace -= 1;
                            if brace == 0 {
                                break;
                            }
                        }
                        Tok::Punct(';') if brace == 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                let lo = sig[attr_start].0;
                let hi = sig.get(end).map_or(toks.len() - 1, |s| s.0);
                for slot in &mut mask[lo..=hi] {
                    *slot = true;
                }
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Run the file-local rules (including the intra-function
/// `wal-protocol` dataflow check) over one lexed file. Returns the raw
/// findings and the parsed item AST (reused by the workspace pass).
fn scan_file(path: &str, toks: &[Token], config: &Config) -> (Vec<RawFinding>, FileAst) {
    let mask = test_mask(toks);
    let sig = Sig::new(toks);
    let ast = parse_file(&sig, &mask);
    let mut raw: Vec<RawFinding> = Vec::new();
    for rule in config.rules_for(path) {
        match rule {
            "oracle-isolation" => rules::oracle_isolation(&sig, &mask, &mut raw),
            "determinism" => rules::determinism(&sig, &mask, &mut raw),
            "unsafe-hygiene" => rules::unsafe_hygiene(toks, &sig, &mask, &mut raw),
            "panic-hygiene" => rules::panic_hygiene(&sig, &mask, &mut raw),
            "obs-timing" => rules::obs_timing(&sig, &mask, &mut raw),
            "wal-protocol" => rules::wal_protocol(&sig, &ast, &mut raw),
            r if GRAPH_RULES.contains(&r) => {} // workspace pass
            other => raw.push(RawFinding {
                rule: "suppression",
                line: 1,
                message: format!("config names unknown rule '{other}'"),
                chain: Vec::new(),
            }),
        }
    }
    (raw, ast)
}

/// Match raw findings against the file's `lint:allow` comments and
/// audit the suppressions themselves. Every file is audited even when
/// no rule fired (or none is in scope): a `lint:allow` that suppresses
/// nothing is stale and must be removed, not silently ignored.
fn apply_suppressions(path: &str, toks: &[Token], raw: Vec<RawFinding>) -> Vec<Finding> {
    let mut supps = parse_suppressions(toks);
    // Index: (rule, line) → suppression slot.
    let mut by_key: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for (idx, s) in supps.iter().enumerate() {
        by_key.insert((s.rule.clone(), s.line), idx);
    }

    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let hit = by_key
            .get(&(f.rule.to_string(), f.line))
            .or_else(|| by_key.get(&(f.rule.to_string(), f.line.saturating_sub(1))))
            .copied();
        match hit {
            Some(idx) if supps[idx].has_reason => {
                supps[idx].used = true;
            }
            Some(idx) => {
                supps[idx].used = true;
                out.push(Finding {
                    path: path.to_string(),
                    line: supps[idx].line,
                    rule: "suppression".into(),
                    message: format!(
                        "lint:allow({}) must state a reason after the closing paren",
                        supps[idx].rule
                    ),
                    chain: Vec::new(),
                });
            }
            None => out.push(Finding {
                path: path.to_string(),
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message,
                chain: f.chain,
            }),
        }
    }
    for s in &supps {
        if !s.used {
            out.push(Finding {
                path: path.to_string(),
                line: s.line,
                rule: "suppression".into(),
                message: format!(
                    "lint:allow({}) suppresses nothing here (stale, misplaced, or the rule \
                     is out of scope for this file)",
                    s.rule
                ),
                chain: Vec::new(),
            });
        }
    }
    out
}

/// Scan one file's source under `config`. `path` must be the
/// workspace-relative, `/`-separated location — rule scoping and
/// reported findings both use it verbatim. Runs the file-local rules
/// only; the call-graph rules need [`check_workspace`].
pub fn scan_source(path: &str, src: &str, config: &Config) -> Vec<Finding> {
    let toks = lex(src);
    let (raw, _ast) = scan_file(path, &toks, config);
    let mut out = apply_suppressions(path, &toks, raw);
    out.sort();
    out
}

/// Recursively collect `.rs` files under `root`, returning
/// workspace-relative `/`-separated paths in sorted (deterministic)
/// order. Excluded prefixes are pruned during the walk.
fn collect_rs_files(root: &Path, rel: &str, config: &Config, out: &mut Vec<String>) {
    if config.is_excluded(rel) && !rel.is_empty() {
        return;
    }
    let dir = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut names: Vec<(bool, String)> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let is_dir = e.file_type().ok()?.is_dir();
            Some((is_dir, name))
        })
        .collect();
    names.sort();
    for (is_dir, name) in names {
        let child = if rel.is_empty() {
            name.clone()
        } else {
            format!("{rel}/{name}")
        };
        if is_dir {
            collect_rs_files(root, &child, config, out);
        } else if name.ends_with(".rs") && !config.is_excluded(&child) {
            out.push(child);
        }
    }
}

/// Is `rel` part of the analysed call graph? Library/binary sources
/// only — integration tests, benches and the vendored shims are not
/// serving or experiment code and would only add name-collision edges.
fn is_analysis_path(rel: &str) -> bool {
    rel.ends_with(".rs")
        && (rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/")))
}

struct LoadedFile {
    rel: String,
    toks: Vec<Token>,
}

/// Scan the whole workspace at `root` under `config`: parallel
/// per-file pass, then the call-graph rules over every parsed source
/// file. Output order is deterministic (sorted by path, line, rule) so
/// CI diffs are stable. IO failures on individual files are reported
/// as findings rather than aborting the run.
pub fn check_workspace(root: &Path, config: &Config) -> Vec<Finding> {
    let graph_active = config
        .rules
        .keys()
        .any(|k| GRAPH_RULES.contains(&k.as_str()));
    let mut prefixes: Vec<String> = config
        .rules
        .values()
        .flat_map(|s| s.include.iter().cloned())
        .collect();
    if graph_active {
        // The call graph spans the whole workspace regardless of where
        // the graph rules *report*.
        prefixes.push("crates".into());
        prefixes.push("src".into());
    }
    prefixes.sort();
    prefixes.dedup();
    // Drop prefixes shadowed by a shorter one (e.g. `crates/core/src`
    // under `crates`) so files are visited once.
    let roots: Vec<String> = prefixes
        .iter()
        .filter(|p| {
            !prefixes
                .iter()
                .any(|q| q.as_str() != p.as_str() && p.starts_with(&format!("{q}/")))
        })
        .cloned()
        .collect();

    let mut files = Vec::new();
    for prefix in &roots {
        let target = root.join(prefix.replace('/', std::path::MAIN_SEPARATOR_STR));
        if target.is_file() {
            files.push(prefix.clone());
        } else {
            collect_rs_files(root, prefix, config, &mut files);
        }
    }
    files.sort();
    files.dedup();

    let mut findings: Vec<Finding> = Vec::new();
    let mut loaded: Vec<LoadedFile> = Vec::new();
    for rel in &files {
        let abs: PathBuf = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        match std::fs::read_to_string(&abs) {
            Ok(src) => loaded.push(LoadedFile {
                rel: rel.clone(),
                toks: lex(&src),
            }),
            Err(e) => findings.push(Finding {
                path: rel.clone(),
                line: 0,
                rule: "suppression".into(),
                message: format!("unreadable file: {e}"),
                chain: Vec::new(),
            }),
        }
    }

    // Per-file pass, parallel over files. Results are collected in
    // input (sorted-path) order, so the output stays deterministic
    // under any thread count.
    let mut per_file: Vec<(Vec<RawFinding>, FileAst)> = loaded
        .par_iter()
        .map(|f| scan_file(&f.rel, &f.toks, config))
        .collect();

    // Workspace pass: resolve symbols over every analysed file, build
    // the call graph, run the interprocedural rules.
    if graph_active {
        let analysis: Vec<usize> = (0..loaded.len())
            .filter(|&i| is_analysis_path(&loaded[i].rel))
            .collect();
        let parsed: Vec<(String, FileAst)> = analysis
            .iter()
            .map(|&i| (loaded[i].rel.clone(), per_file[i].1.clone()))
            .collect();
        let ws = Workspace::build(&parsed);
        let sigs: Vec<Sig<'_>> = analysis
            .iter()
            .map(|&i| Sig::new(&loaded[i].toks))
            .collect();
        let cg = CallGraph::build(&ws, &sigs);

        let mut ws_findings: Vec<WsFinding> = Vec::new();
        if let Some(scope) = config.rules.get("oracle-taint") {
            rules::oracle_taint(&ws, &cg, scope, config, &mut ws_findings);
        }
        if let Some(scope) = config.rules.get("determinism-reach") {
            rules::determinism_reach(&ws, &cg, &sigs, scope, config, &mut ws_findings);
        }
        if let Some(scope) = config.rules.get("panic-reach") {
            rules::panic_reach(&ws, &cg, &sigs, scope, config, &mut ws_findings);
        }
        let by_path: BTreeMap<&str, usize> = loaded
            .iter()
            .enumerate()
            .map(|(i, f)| (f.rel.as_str(), i))
            .collect();
        for wf in ws_findings {
            if let Some(&i) = by_path.get(wf.path.as_str()) {
                per_file[i].0.push(wf.raw);
            }
        }
    }

    for (f, (raw, _ast)) in loaded.iter().zip(per_file) {
        findings.extend(apply_suppressions(&f.rel, &f.toks, raw));
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default_workspace()
    }

    #[test]
    fn truth_call_in_core_is_caught() {
        let src = "pub fn evil(e: &ProbeEngine) -> bool { e.truth().value(0, 0) }\n";
        let f = scan_source("crates/core/src/evil.rs", src, &cfg());
        assert!(
            f.iter()
                .any(|f| f.rule == "oracle-isolation" && f.line == 1),
            "{f:?}"
        );
    }

    #[test]
    fn truth_call_in_core_tests_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t(e: &ProbeEngine) { e.truth(); }\n}\n";
        let f = scan_source("crates/core/src/ok.rs", src, &cfg());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn suppression_with_reason_silences_and_is_used() {
        let src = "// lint:allow(oracle-isolation) Thm 3.2 remark sanctions strict re-pay\n\
                   fn f(h: &PlayerHandle) { h.probe_fresh(0); }\n";
        let f = scan_source("crates/core/src/s.rs", src, &cfg());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn suppression_without_reason_is_itself_a_finding() {
        let src = "// lint:allow(oracle-isolation)\n\
                   fn f(h: &PlayerHandle) { h.probe_fresh(0); }\n";
        let f = scan_source("crates/core/src/s.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "suppression");
    }

    #[test]
    fn stale_suppression_is_reported() {
        let src = "// lint:allow(panic-hygiene) nothing panics below\nfn f() {}\n";
        let f = scan_source("crates/core/src/s.rs", src, &cfg());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn stale_suppression_in_file_with_no_active_rules_is_still_reported() {
        // `crates/bench/src` is outside every rule scope; the allow is
        // stale all the same and must be surfaced (regression: the old
        // scanner returned early when no rule was active).
        let src = "// lint:allow(panic-hygiene) stale excuse\nfn f() {}\n";
        let f = scan_source("crates/bench/src/lib.rs", src, &cfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("suppresses nothing"), "{f:?}");
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let f = scan_source("crates/model/src/x.rs", src, &cfg());
        assert!(f.iter().any(|f| f.rule == "panic-hygiene"), "{f:?}");
    }

    #[test]
    fn long_safety_block_reaching_the_window_counts() {
        // The SAFETY: marker is 10 lines above the `unsafe`, beyond the
        // lookback window — but the comment run is contiguous down to
        // the line before it, so it must be accepted.
        let mut src = String::from("// SAFETY: (1) precondition one holds because\n");
        for i in 0..9 {
            src.push_str(&format!("// continued explanation line {i}\n"));
        }
        src.push_str("fn f() { unsafe { core::hint::unreachable_unchecked() } }\n");
        let f = scan_source("crates/model/src/u.rs", &src, &cfg());
        assert!(!f.iter().any(|f| f.rule == "unsafe-hygiene"), "{f:?}");
    }

    #[test]
    fn far_safety_comment_with_gap_does_not_count() {
        let src = "// SAFETY: about something else entirely\n\
                   fn g() {}\n\n\n\n\n\n\n\n\n\n\n\
                   fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let f = scan_source("crates/model/src/u.rs", src, &cfg());
        assert!(f.iter().any(|f| f.rule == "unsafe-hygiene"), "{f:?}");
    }

    #[test]
    fn out_of_scope_paths_produce_nothing() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(scan_source("crates/bench/src/lib.rs", src, &cfg()).is_empty());
        assert!(scan_source("tests/end_to_end.rs", src, &cfg()).is_empty());
    }

    #[test]
    fn wal_protocol_flags_mutation_before_fsync() {
        let src = "\
struct W { through: u64, file: std::fs::File }
impl W {
    fn bad(&mut self, tick: u64, buf: &[u8]) -> std::io::Result<()> {
        self.file.write_all(buf)?;
        self.through = tick;
        self.file.sync_data()
    }
    fn good(&mut self, tick: u64, buf: &[u8]) -> std::io::Result<()> {
        self.file.write_all(buf)?;
        self.file.sync_data()?;
        self.through = tick;
        Ok(())
    }
}
";
        let f = scan_source("crates/service/src/wal.rs", src, &cfg());
        let wal: Vec<&Finding> = f.iter().filter(|f| f.rule == "wal-protocol").collect();
        assert_eq!(wal.len(), 1, "{f:?}");
        assert_eq!(wal[0].line, 5, "mutation line, not write line: {wal:?}");
        assert!(wal[0].message.contains("bad"));
    }

    #[test]
    fn wal_protocol_flags_unsynced_write_at_return() {
        let src = "\
struct W { file: std::fs::File }
impl W {
    fn leaky(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.file.write_all(buf)
    }
}
";
        let f = scan_source("crates/service/src/wal.rs", src, &cfg());
        assert!(
            f.iter()
                .any(|f| f.rule == "wal-protocol" && f.message.contains("not fsynced")),
            "{f:?}"
        );
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let findings = vec![Finding {
            path: "a\\b.rs".into(),
            line: 3,
            rule: "panic-hygiene".into(),
            message: "say \"no\"".into(),
            chain: vec![ChainHop {
                func: "Service::tick".into(),
                path: "s.rs".into(),
                line: 7,
            }],
        }];
        let j = findings_to_json(&findings);
        assert!(j.contains("\"count\": 1"), "{j}");
        assert!(j.contains("a\\\\b.rs"), "{j}");
        assert!(j.contains("say \\\"no\\\""), "{j}");
        assert!(j.contains("\"chain\": [{\"fn\": \"Service::tick\""), "{j}");
        assert!(findings_to_json(&[]).contains("\"count\": 0"));
    }
}
