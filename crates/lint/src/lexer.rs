//! A hand-rolled Rust lexer, just deep enough for invariant scanning.
//!
//! The scanner rules only need to tell four things apart reliably:
//! identifiers/keywords, punctuation, comments (with their text, for
//! `// SAFETY:` and `// lint:allow(…)` recognition), and literals
//! (whose *content* must never produce findings — a doc example or an
//! error string mentioning `unwrap()` is not a violation). Everything
//! subtle in real Rust lexing lives in the literal forms, so those are
//! handled in full: string escapes, raw strings with `#` fences, byte
//! strings, char literals vs. lifetimes, and nested block comments.

/// What a token is. Literal contents are deliberately dropped — no
/// rule may match inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Any literal: string, raw string, byte string, char, or number.
    Literal,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
    /// One punctuation character (`{`, `.`, `!`, …).
    Punct(char),
    /// `// …` comment, text excluding the slashes, trimmed.
    LineComment(String),
    /// `/* … */` comment (possibly nested), raw inner text.
    BlockComment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails: unterminated literals or comments are
/// closed by end of input (the scanner lints source that `rustc`
/// already accepts, so recovery precision does not matter).
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                c.bump();
                c.bump();
                let start = c.pos;
                while let Some(nb) = c.peek() {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                let text = String::from_utf8_lossy(&c.src[start..c.pos])
                    .trim()
                    .to_string();
                out.push(Token {
                    kind: Tok::LineComment(text),
                    line,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let start = c.pos;
                let mut depth = 1usize;
                let mut end = c.pos;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = c.pos;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                            end = c.pos;
                        }
                        (None, _) => break,
                    }
                }
                let text = String::from_utf8_lossy(&c.src[start..end]).to_string();
                out.push(Token {
                    kind: Tok::BlockComment(text),
                    line,
                });
            }
            b'"' => {
                lex_string(&mut c);
                out.push(Token {
                    kind: Tok::Literal,
                    line,
                });
            }
            b'r' | b'b' if starts_prefixed_literal(&c) => {
                lex_prefixed_literal(&mut c);
                out.push(Token {
                    kind: Tok::Literal,
                    line,
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut c);
                out.push(Token { kind, line });
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                let text = String::from_utf8_lossy(&c.src[start..c.pos]).to_string();
                out.push(Token {
                    kind: Tok::Ident(text),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut c);
                out.push(Token {
                    kind: Tok::Literal,
                    line,
                });
            }
            _ => {
                c.bump();
                out.push(Token {
                    kind: Tok::Punct(b as char),
                    line,
                });
            }
        }
    }
    out
}

/// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`?
/// (Otherwise the `r`/`b` is an ordinary identifier start.)
fn starts_prefixed_literal(c: &Cursor<'_>) -> bool {
    let b0 = c.peek();
    let b1 = c.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"' | b'#')) => true,
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(c.peek_at(2), Some(b'"' | b'#')),
        _ => false,
    }
}

fn lex_prefixed_literal(c: &mut Cursor<'_>) {
    let mut raw = false;
    while let Some(b) = c.peek() {
        match b {
            b'b' => {
                c.bump();
            }
            b'r' => {
                raw = true;
                c.bump();
            }
            _ => break,
        }
    }
    if raw {
        let mut fences = 0usize;
        while c.peek() == Some(b'#') {
            fences += 1;
            c.bump();
        }
        c.bump(); // opening quote
        loop {
            match c.bump() {
                None => return,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < fences && c.peek() == Some(b'#') {
                        seen += 1;
                        c.bump();
                    }
                    if seen == fences {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    } else if c.peek() == Some(b'\'') {
        lex_quote(c);
    } else {
        lex_string(c);
    }
}

fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None | Some(b'"') => return,
            Some(b'\\') => {
                c.bump();
            }
            Some(_) => {}
        }
    }
}

/// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` (char literal).
fn lex_quote(c: &mut Cursor<'_>) -> Tok {
    c.bump(); // opening quote
    match c.peek() {
        Some(b'\\') => {
            // Escape sequence: definitely a char literal.
            c.bump();
            c.bump();
            while let Some(b) = c.peek() {
                c.bump();
                if b == b'\'' {
                    break;
                }
            }
            Tok::Literal
        }
        Some(b) if is_ident_start(b) => {
            // `'x…`: lifetime unless a closing quote follows the ident.
            let mut off = 0usize;
            while c.peek_at(off).is_some_and(is_ident_continue) {
                off += 1;
            }
            if c.peek_at(off) == Some(b'\'') {
                for _ in 0..=off {
                    c.bump();
                }
                Tok::Literal
            } else {
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                Tok::Lifetime
            }
        }
        Some(_) => {
            // `'('`-style single-char literal.
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
            }
            Tok::Literal
        }
        None => Tok::Literal,
    }
}

fn lex_number(c: &mut Cursor<'_>) {
    // Loose: consume alphanumerics and underscores (covers 0x/0b/0o,
    // type suffixes, exponents), plus a `.` only when a digit follows
    // (so `0..n` keeps its range dots).
    while let Some(b) = c.peek() {
        let fraction_dot = b == b'.' && c.peek_at(1).is_some_and(|d| d.is_ascii_digit());
        // Exponent sign inside `1e-5`.
        let exponent_sign = (b == b'+' || b == b'-')
            && matches!(c.src.get(c.pos.wrapping_sub(1)), Some(b'e' | b'E'));
        if b.is_ascii_alphanumeric() || b == b'_' || fraction_dot || exponent_sign {
            c.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn literals_hide_their_contents() {
        // None of the `unwrap` mentions below are identifier tokens.
        let src = r###"let s = "call .unwrap() here"; let r = r#"panic!"#; let c = 'u';"###;
        assert!(!idents(src).iter().any(|i| i == "unwrap" || i == "panic"));
    }

    #[test]
    fn comments_keep_text_and_lines() {
        let toks = lex("let x = 1;\n// SAFETY: fine\nfoo();");
        let c = toks
            .iter()
            .find(|t| matches!(t.kind, Tok::LineComment(_)))
            .unwrap();
        assert_eq!(c.line, 2);
        assert_eq!(c.kind, Tok::LineComment("SAFETY: fine".into()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ tail */ ident");
        assert_eq!(idents("/* outer /* inner */ tail */ ident"), vec!["ident"]);
        assert!(matches!(toks[0].kind, Tok::BlockComment(_)));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == Tok::Lifetime).count();
        let literals = toks.iter().filter(|t| t.kind == Tok::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let x = r##\"quote \"# inside\"##; after";
        assert_eq!(idents(src), vec!["let", "x", "after"]);
    }

    #[test]
    fn raw_string_prefix_consumed() {
        let src = "let x = r\"abc\"; after";
        assert_eq!(idents(src), vec!["let", "x", "after"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("for i in 0..n {}");
        let dots = toks.iter().filter(|t| t.kind == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn line_numbers_advance_through_literals() {
        let toks = lex("let s = \"a\nb\nc\";\nident");
        let id = toks.iter().find(|t| t.kind == Tok::Ident("ident".into()));
        assert_eq!(id.unwrap().line, 4);
    }
}
