//! Conservative call graph over the resolved workspace.
//!
//! Call sites are recognised syntactically inside each fn body:
//!
//! * `self.m(…)` — if the enclosing `impl` owner defines `m`, the edge
//!   goes there precisely; otherwise to every method named `m`.
//! * `Qual::m(…)` — resolved in order: `Self`, a workspace type named
//!   `Qual`, a module whose last segment is `Qual`, a known external
//!   (std/shim) qualifier (no edge), else every fn named `m`.
//! * `recv.m(…)` — every workspace method named `m` (receiver types
//!   are unknown without a type system), pruned by arity: Rust has no
//!   default or variadic arguments, so a two-parameter method can never
//!   be the callee of a one-argument call. Argument counting bails out
//!   (keeping the full fan-out) when a top-level `|`, `<`, or `>`
//!   appears in the argument list — closure parameters and comparison
//!   operators carry commas/brackets that naive counting would misread.
//! * `m(…)` — every free fn named `m` (locals and tuple-struct
//!   constructors resolve to nothing and drop out naturally).
//!
//! Macro invocations (`name!(…)`) are never call edges; function
//! *references* passed as values (`.map(helper)`) are a documented
//! blind spot (DESIGN.md §7). Candidate sets make the graph an
//! over-approximation everywhere else: reachability rules may flag a
//! chain the type system would rule out (suppressible with a reason),
//! but a resolvable call is never silently dropped.

use crate::parse::KEYWORDS;
use crate::resolve::{FnInfo, Workspace};
use crate::rules::Sig;
use std::collections::BTreeSet;

/// Qualifiers that refer to std / vendored-shim types: calls through
/// them leave the workspace, so they produce no edges instead of
/// falling back to every same-named fn.
const EXTERNAL_QUALIFIERS: &[&str] = &[
    "Arc",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "BTreeMap",
    "BTreeSet",
    "Box",
    "Cell",
    "Command",
    "Condvar",
    "Cursor",
    "Default",
    "Drop",
    "Duration",
    "File",
    "From",
    "HashMap",
    "HashSet",
    "Instant",
    "Into",
    "Iterator",
    "Mutex",
    "NonZeroUsize",
    "OnceLock",
    "OpenOptions",
    "Option",
    "Ordering",
    "Path",
    "PathBuf",
    "Rc",
    "RefCell",
    "Result",
    "RwLock",
    "String",
    "SystemTime",
    "TcpListener",
    "TcpStream",
    "TryFrom",
    "UdpSocket",
    "Vec",
    "VecDeque",
    "Wrapping",
];

/// First path segments that name external crates (std and the offline
/// shims, which are not part of the analysed graph).
const EXTERNAL_CRATES: &[&str] = &[
    "std",
    "core",
    "alloc",
    "rand",
    "rayon",
    "parking_lot",
    "proptest",
    "criterion",
    "libc",
];

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Call {
    /// Callee fn id.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// Forward adjacency, indexed by fn id.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[f]` — calls made by fn `f`, in source order.
    pub edges: Vec<Vec<Call>>,
}

impl CallGraph {
    /// Build the graph. `sigs[file]` must be the significant-token view
    /// of the file the workspace indexed under the same id.
    pub fn build(ws: &Workspace, sigs: &[Sig<'_>]) -> Self {
        let mut edges: Vec<Vec<Call>> = vec![Vec::new(); ws.fns.len()];
        for (id, f) in ws.fns.iter().enumerate() {
            let Some((lo, hi)) = f.body else { continue };
            let sig = &sigs[f.file];
            for i in lo..hi.min(sig.len()) {
                let Some(site) = call_site(sig, i) else {
                    continue;
                };
                let mut cands: Vec<usize> = resolve(ws, f, &site);
                cands.sort_unstable();
                cands.dedup();
                let line = sig.line(i);
                for callee in cands {
                    edges[id].push(Call { callee, line });
                }
            }
        }
        CallGraph { edges }
    }

    /// Reverse adjacency (caller lists per callee).
    pub fn reversed(&self) -> Vec<Vec<usize>> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.edges.len()];
        for (caller, outs) in self.edges.iter().enumerate() {
            for c in outs {
                rev[c.callee].push(caller);
            }
        }
        rev
    }

    /// BFS from `start`, returning for each reached fn the `(parent,
    /// call line in parent)` that discovered it (`start` maps to
    /// itself). Unreached fns are absent.
    pub fn bfs_parents(&self, start: usize) -> Vec<Option<(usize, u32)>> {
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; self.edges.len()];
        parent[start] = Some((start, 0));
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(f) = queue.pop_front() {
            for c in &self.edges[f] {
                if parent[c.callee].is_none() {
                    parent[c.callee] = Some((f, c.line));
                    queue.push_back(c.callee);
                }
            }
        }
        parent
    }
}

/// A syntactic call site.
#[derive(Debug)]
enum Site {
    /// `recv.name(…)`; `self_recv` when the receiver is literally
    /// `self`; `args` is the argument count when it could be counted
    /// reliably (`None` disables arity pruning for this site).
    Method {
        name: String,
        self_recv: bool,
        args: Option<usize>,
    },
    /// `a::b::name(…)` with the path segments before `name`.
    Qualified { segments: Vec<String>, name: String },
    /// `name(…)` with no receiver or path.
    Bare { name: String },
}

/// Recognise a call whose name ident sits at significant index `i`.
fn call_site(sig: &Sig<'_>, i: usize) -> Option<Site> {
    let name = sig.ident(i)?;
    if sig.punct(i + 1) != Some('(') || KEYWORDS.contains(&name) {
        return None;
    }
    // Definition, not a call: `fn name(`.
    if sig.ident(i.wrapping_sub(1)) == Some("fn") {
        return None;
    }
    match sig.punct(i.wrapping_sub(1)) {
        Some('.') => {
            let self_recv = sig.ident(i.wrapping_sub(2)) == Some("self")
                && sig.punct(i.wrapping_sub(3)) != Some('.');
            Some(Site::Method {
                name: name.to_string(),
                self_recv,
                args: count_args(sig, i + 1),
            })
        }
        Some(':') if sig.punct(i.wrapping_sub(2)) == Some(':') => {
            let mut segments: Vec<String> = Vec::new();
            let mut k = i.wrapping_sub(3);
            while let Some(seg) = sig.ident(k) {
                segments.push(seg.to_string());
                if sig.punct(k.wrapping_sub(1)) == Some(':')
                    && sig.punct(k.wrapping_sub(2)) == Some(':')
                {
                    k = k.wrapping_sub(3);
                } else {
                    break;
                }
            }
            segments.reverse();
            Some(Site::Qualified {
                segments,
                name: name.to_string(),
            })
        }
        _ => Some(Site::Bare {
            name: name.to_string(),
        }),
    }
}

/// Best-effort argument count for the call whose `(` sits at `open`.
/// Commas are separators only at the top nesting level; `None` means
/// counting could be confounded — a top-level `|` (closure parameters
/// carry commas), `<`/`>` (comparisons, shifts, casts to generic
/// types), or an unclosed list — which disables arity pruning for the
/// site rather than risking a dropped edge.
fn count_args(sig: &Sig<'_>, open: usize) -> Option<usize> {
    let mut args = 0usize;
    let mut seg_started = false;
    let mut depth = 0usize;
    let mut i = open + 1;
    while i < sig.len() {
        match sig.punct(i) {
            Some(')') if depth == 0 => {
                if seg_started {
                    args += 1;
                }
                return Some(args);
            }
            Some(',') if depth == 0 => {
                if seg_started {
                    args += 1;
                    seg_started = false;
                }
            }
            Some('|') | Some('<') | Some('>') if depth == 0 => return None,
            Some('(') | Some('[') | Some('{') => {
                seg_started = true;
                depth += 1;
            }
            Some(')') | Some(']') | Some('}') => {
                seg_started = true;
                depth -= 1;
            }
            _ => seg_started = true,
        }
        i += 1;
    }
    None
}

/// Candidate callee ids for `site` occurring inside `caller`.
fn resolve(ws: &Workspace, caller: &FnInfo, site: &Site) -> Vec<usize> {
    match site {
        Site::Method {
            name,
            self_recv,
            args,
        } => {
            let fits = |id: &usize| args.is_none_or(|n| ws.fns[*id].arity == n);
            if *self_recv {
                if let Some(owner) = &caller.owner {
                    let own: Vec<usize> = ws
                        .of_owner(owner, name)
                        .iter()
                        .filter(|id| fits(id))
                        .copied()
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            ws.methods_named(name)
                .iter()
                .filter(|id| fits(id))
                .copied()
                .collect()
        }
        Site::Qualified { segments, name } => {
            let qual = segments.last().map(String::as_str);
            if qual == Some("Self") {
                if let Some(owner) = &caller.owner {
                    return ws.of_owner(owner, name).to_vec();
                }
                return Vec::new();
            }
            if let Some(q) = qual {
                let owned = ws.of_owner(q, name);
                if !owned.is_empty() {
                    return owned.to_vec();
                }
                let in_mod = ws.in_module(q, name);
                if !in_mod.is_empty() {
                    return in_mod.to_vec();
                }
            }
            let first = segments.first().map_or("", String::as_str);
            if EXTERNAL_CRATES.contains(&first)
                || qual.is_some_and(|q| EXTERNAL_QUALIFIERS.contains(&q))
            {
                return Vec::new();
            }
            ws.named(name).to_vec()
        }
        Site::Bare { name } => ws.free_named(name).to_vec(),
    }
}

/// Reconstruct the path `start → … → target` from [`CallGraph::bfs_parents`]
/// output as `(fn id, line of the call made *from* that fn)` hops; the
/// final element is `(target, 0)`.
pub fn chain_to(
    parents: &[Option<(usize, u32)>],
    start: usize,
    target: usize,
) -> Vec<(usize, u32)> {
    if start == target {
        return vec![(start, 0)];
    }
    let mut nodes = vec![target];
    let mut lines: Vec<u32> = Vec::new();
    let mut cur = target;
    let mut guard: BTreeSet<usize> = BTreeSet::new();
    while cur != start {
        let Some((p, line)) = parents[cur] else {
            return Vec::new();
        };
        if !guard.insert(cur) {
            return Vec::new();
        }
        lines.push(line);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    lines.reverse();
    // `lines[i]` is now the line where `nodes[i]` calls `nodes[i+1]`.
    nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, lines.get(i).copied().unwrap_or(0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::scan::test_mask;

    fn graph(files: &[(&str, &str)]) -> (Workspace, Vec<Vec<Call>>) {
        let toks: Vec<Vec<crate::lexer::Token>> = files.iter().map(|(_, src)| lex(src)).collect();
        let mut parsed = Vec::new();
        for ((path, _), t) in files.iter().zip(&toks) {
            let mask = test_mask(t);
            let sig = Sig::new(t);
            parsed.push(((*path).to_string(), parse_file(&sig, &mask)));
        }
        let ws = Workspace::build(&parsed);
        let sigs: Vec<Sig> = toks.iter().map(|t| Sig::new(t)).collect();
        let cg = CallGraph::build(&ws, &sigs);
        (ws, cg.edges)
    }

    fn fqn(ws: &Workspace, id: usize) -> String {
        ws.fns[id].fqn()
    }

    #[test]
    fn self_calls_resolve_to_the_owner_first() {
        let (ws, edges) = graph(&[(
            "crates/a/src/lib.rs",
            r#"
struct A;
impl A {
    fn row(&self) -> u8 { 0 }
    fn go(&self) -> u8 { self.row() }
}
struct B;
impl B { fn row(&self) -> u8 { 1 } }
"#,
        )]);
        let go = ws.matching("A::go")[0];
        let callees: Vec<String> = edges[go].iter().map(|c| fqn(&ws, c.callee)).collect();
        assert_eq!(callees, vec!["tmwia_a::A::row"]);
    }

    #[test]
    fn unqualified_method_calls_fan_out_to_all_candidates() {
        let (ws, edges) = graph(&[(
            "crates/a/src/lib.rs",
            r#"
struct A;
impl A { fn row(&self) -> u8 { 0 } }
struct B;
impl B { fn row(&self) -> u8 { 1 } }
fn go(x: &A) -> u8 { x.row() }
"#,
        )]);
        let go = ws.matching("go")[0];
        assert_eq!(edges[go].len(), 2, "both `row` methods are candidates");
    }

    #[test]
    fn module_qualified_and_external_calls() {
        let (ws, edges) = graph(&[
            ("crates/a/src/util.rs", "pub fn helper() {}"),
            (
                "crates/b/src/lib.rs",
                r#"
fn go() {
    util::helper();
    std::fs::read("x");
    Vec::new();
}
"#,
            ),
        ]);
        let go = ws.matching("go")[0];
        let callees: Vec<String> = edges[go].iter().map(|c| fqn(&ws, c.callee)).collect();
        assert_eq!(callees, vec!["tmwia_a::util::helper"]);
    }

    #[test]
    fn arity_prunes_method_fan_out() {
        let (ws, edges) = graph(&[(
            "crates/a/src/lib.rs",
            r#"
struct Handle;
impl Handle { fn probe(&self, j: usize) -> bool { true } }
struct Space;
impl Space { fn probe(&self, p: usize, j: usize) -> u32 { 0 } }
fn go(h: &Handle) -> bool { h.probe(3) }
"#,
        )]);
        let go = ws.matching("go")[0];
        let callees: Vec<String> = edges[go].iter().map(|c| fqn(&ws, c.callee)).collect();
        assert_eq!(
            callees,
            vec!["tmwia_a::Handle::probe"],
            "the two-parameter Space::probe cannot take a one-argument call"
        );
    }

    #[test]
    fn closure_arguments_disable_arity_pruning() {
        let (ws, edges) = graph(&[(
            "crates/a/src/lib.rs",
            r#"
struct A;
impl A { fn apply(&self, f: u8) -> u8 { f } }
struct B;
impl B { fn apply(&self, f: u8, g: u8) -> u8 { f } }
fn go(x: &A) -> u8 { x.apply(|a, b| a) }
"#,
        )]);
        let go = ws.matching("go")[0];
        assert_eq!(
            edges[go].len(),
            2,
            "a closure argument's commas make the count unreliable; keep the full fan-out"
        );
    }

    #[test]
    fn macros_and_definitions_are_not_edges() {
        let (ws, edges) = graph(&[(
            "crates/a/src/lib.rs",
            r#"
fn log() {}
fn go() { println!("x"); }
"#,
        )]);
        let go = ws.matching("go")[0];
        assert!(edges[go].is_empty());
        let log = ws.matching("log")[0];
        assert!(edges[log].is_empty());
    }

    #[test]
    fn bfs_chains_carry_call_lines() {
        let (ws, _) = graph(&[(
            "crates/a/src/lib.rs",
            "fn c() {}\nfn b() { c(); }\nfn a() { b(); }\n",
        )]);
        let sigs_src = "fn c() {}\nfn b() { c(); }\nfn a() { b(); }\n";
        let toks = lex(sigs_src);
        let sig = Sig::new(&toks);
        let cg = CallGraph::build(&ws, &[sig]);
        let a = ws.matching("a")[0];
        let c = ws.matching("c")[0];
        let parents = cg.bfs_parents(a);
        assert!(parents[c].is_some(), "a reaches c");
        let chain = chain_to(&parents, a, c);
        let names: Vec<&str> = chain
            .iter()
            .map(|&(id, _)| ws.fns[id].name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(chain[0].1, 3, "a calls b on line 3");
        assert_eq!(chain[1].1, 2, "b calls c on line 2");
    }
}
