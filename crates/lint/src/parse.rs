//! Item-level recursive-descent parser over the significant-token view.
//!
//! This is deliberately *not* a Rust front-end: it recognises just
//! enough structure — `mod` trees, `fn` items with their brace-delimited
//! bodies, `impl`/`trait` blocks and the type they attach methods to —
//! to anchor every function body in the file and name it well enough
//! for workspace-wide resolution ([`crate::resolve`]). Everything else
//! (expressions, types, generics, attributes) is skipped with balanced
//! bracket counting. The parser is total: malformed input degrades to
//! "fewer functions recognised", never to a panic, which keeps the
//! analyzer conservative in the safe direction for taint (a missed
//! function cannot *create* a false alarm) and honest about it in the
//! docs (DESIGN.md §7 lists the blind spots).

use crate::rules::Sig;

/// One `fn` item recognised in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's own name.
    pub name: String,
    /// Enclosing `impl`/`trait` type (last path segment), if any —
    /// `impl Service { fn tick … }` records `Service`.
    pub owner: Option<String>,
    /// Inline `mod` path inside the file (file-system modules are the
    /// resolver's job).
    pub module: Vec<String>,
    /// 1-based line of the function name.
    pub line: u32,
    /// Half-open significant-token range strictly inside the body
    /// braces; `None` for bodyless declarations (trait methods,
    /// `extern` fns).
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]`/`#[test]` span.
    pub is_test: bool,
    /// Number of parameters, excluding any `self` receiver. Rust has
    /// no default or variadic arguments, so a call whose argument count
    /// differs can never land here — the call graph uses this to prune
    /// name-collision fan-out without a type system.
    pub arity: usize,
}

/// Parsed shape of one file: every recognised function.
#[derive(Debug, Clone, Default)]
pub struct FileAst {
    /// Functions in source order.
    pub fns: Vec<FnDef>,
}

/// Parse `sig` (with its test mask over *full* token indices) into an
/// item-level AST.
pub fn parse_file(sig: &Sig<'_>, mask: &[bool]) -> FileAst {
    let mut p = Parser {
        sig,
        mask,
        module: Vec::new(),
        owner: None,
        fns: Vec::new(),
    };
    p.items(0, sig.len());
    FileAst { fns: p.fns }
}

struct Parser<'a, 's> {
    sig: &'a Sig<'s>,
    mask: &'a [bool],
    module: Vec<String>,
    owner: Option<String>,
    fns: Vec<FnDef>,
}

/// Identifiers that can never be a called function's name.
pub(crate) const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "let", "mut", "ref", "fn", "impl", "dyn", "where", "use", "pub", "crate", "super",
    "self", "Self", "unsafe", "async", "await", "box", "static", "const", "type", "trait", "mod",
    "struct", "enum", "union", "extern",
];

impl Parser<'_, '_> {
    fn punct(&self, i: usize) -> Option<char> {
        self.sig.punct(i)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.sig.ident(i)
    }

    /// Index of the `}` matching the `{` at `open`, or `end` if the
    /// file is truncated.
    fn close_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 1usize;
        let mut i = open + 1;
        while i < end {
            match self.punct(i) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Skip a balanced `(…)` / `[…]` / `{…}` group whose opener sits at
    /// `i`; returns the index just past the closer.
    fn skip_group(&self, i: usize, end: usize) -> usize {
        let (open, close) = match self.punct(i) {
            Some('(') => ('(', ')'),
            Some('[') => ('[', ']'),
            Some('{') => ('{', '}'),
            _ => return i + 1,
        };
        let mut depth = 1usize;
        let mut j = i + 1;
        while j < end && depth > 0 {
            match self.punct(j) {
                Some(c) if c == open => depth += 1,
                Some(c) if c == close => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip a balanced generic argument list whose `<` sits at `i`,
    /// ignoring `->` arrows (their `>` is not a closer). Returns the
    /// index just past the matching `>`.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 1usize;
        let mut j = i + 1;
        while j < end && depth > 0 {
            match self.punct(j) {
                Some('-') if self.punct(j + 1) == Some('>') => j += 1,
                Some('<') => depth += 1,
                Some('>') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip an attribute at `i` (`#[…]` or `#![…]`); returns the index
    /// just past the closing `]`.
    fn skip_attr(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j) == Some('!') {
            j += 1;
        }
        if self.punct(j) == Some('[') {
            self.skip_group(j, end)
        } else {
            i + 1
        }
    }

    /// Parse items in `[i, end)` under the current module/owner.
    fn items(&mut self, mut i: usize, end: usize) {
        while i < end {
            if self.punct(i) == Some('#') {
                i = self.skip_attr(i, end);
                continue;
            }
            // Stray block at item level (e.g. an `extern "C" { … }`
            // body we chose not to model): skip it wholesale.
            if self.punct(i) == Some('{') {
                i = self.close_brace(i, end) + 1;
                continue;
            }
            let Some(id) = self.ident(i) else {
                i += 1;
                continue;
            };
            match id {
                // Visibility / fn qualifiers: step over, keep looking
                // for the item keyword. `pub(crate)` carries a group.
                "pub" => {
                    i += 1;
                    if self.punct(i) == Some('(') {
                        i = self.skip_group(i, end);
                    }
                }
                "unsafe" | "async" | "default" => i += 1,
                "extern" => {
                    // `extern "C" fn` / `extern crate foo;` — step over
                    // the keyword (and ABI string, handled as a
                    // non-ident token by the outer loop).
                    i += 1;
                }
                "const" | "static" => {
                    // `const fn` is a qualifier; `const NAME: … = …;`
                    // is an item whose value may hold `{…}` blocks.
                    if self.ident(i + 1) == Some("fn") || self.ident(i + 1) == Some("unsafe") {
                        i += 1;
                    } else {
                        i = self.skip_to_semicolon(i + 1, end);
                    }
                }
                "use" | "type" => i = self.skip_to_semicolon(i + 1, end),
                "macro_rules" => {
                    // `macro_rules! name { … }`
                    let mut j = i + 1;
                    while j < end && !matches!(self.punct(j), Some('{') | Some('(') | Some('[')) {
                        j += 1;
                    }
                    i = self.skip_group(j, end);
                }
                "mod" => i = self.item_mod(i, end),
                "fn" => i = self.item_fn(i, end),
                "impl" => i = self.item_impl(i, end),
                "trait" => i = self.item_trait(i, end),
                "struct" | "enum" | "union" => i = self.item_adt(i, end),
                _ => i += 1,
            }
        }
    }

    /// Skip to just past the next `;` at brace depth 0, skipping
    /// balanced `{…}` (struct-literal or block initialisers).
    fn skip_to_semicolon(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            match self.punct(i) {
                Some(';') => return i + 1,
                Some('{') => i = self.close_brace(i, end) + 1,
                _ => i += 1,
            }
        }
        end
    }

    fn item_mod(&mut self, i: usize, end: usize) -> usize {
        let Some(name) = self.ident(i + 1).map(str::to_string) else {
            return i + 1;
        };
        match self.punct(i + 2) {
            Some(';') => i + 3,
            Some('{') => {
                let close = self.close_brace(i + 2, end);
                self.module.push(name);
                let saved_owner = self.owner.take();
                self.items(i + 3, close);
                self.owner = saved_owner;
                self.module.pop();
                close + 1
            }
            _ => i + 2,
        }
    }

    fn item_fn(&mut self, i: usize, end: usize) -> usize {
        let Some(name) = self.ident(i + 1).map(str::to_string) else {
            return i + 1;
        };
        let line = self.sig.line(i + 1);
        let is_test = self.mask[self.sig.toks[i].0];
        let mut j = i + 2;
        if self.punct(j) == Some('<') {
            j = self.skip_angles(j, end);
        }
        let mut arity = 0;
        if self.punct(j) == Some('(') {
            let past = self.skip_group(j, end);
            arity = self.count_params(j + 1, past.saturating_sub(1));
            j = past;
        }
        // Return type / where clause: scan to the body `{` or a
        // bodyless `;`, stepping over nested groups and generics.
        loop {
            match self.punct(j) {
                None if j >= end => return end,
                Some(';') => {
                    self.push_fn(name, line, None, is_test, arity);
                    return j + 1;
                }
                Some('{') => {
                    let close = self.close_brace(j, end);
                    self.push_fn(name, line, Some((j + 1, close)), is_test, arity);
                    return close + 1;
                }
                Some('<') => j = self.skip_angles(j, end),
                Some('(') | Some('[') => j = self.skip_group(j, end),
                Some('-') if self.punct(j + 1) == Some('>') => j += 2,
                _ => j += 1,
            }
        }
    }

    fn push_fn(
        &mut self,
        name: String,
        line: u32,
        body: Option<(usize, usize)>,
        is_test: bool,
        arity: usize,
    ) {
        self.fns.push(FnDef {
            name,
            owner: self.owner.clone(),
            module: self.module.clone(),
            line,
            body,
            is_test,
            arity,
        });
    }

    /// Count the parameters declared in `[lo, hi)` — the tokens strictly
    /// between a fn's parentheses. Commas inside nested groups and
    /// generic argument lists are not separators; a leading `self`
    /// receiver (`self`, `&mut self`, `self: Box<Self>`, …) is excluded.
    fn count_params(&self, lo: usize, hi: usize) -> usize {
        let mut params = 0usize;
        let mut seg_started = false;
        let mut receiver = false;
        let mut i = lo;
        while i < hi {
            match self.punct(i) {
                Some(',') => {
                    if seg_started {
                        params += 1;
                        seg_started = false;
                    }
                    i += 1;
                }
                Some('(') | Some('[') | Some('{') => {
                    seg_started = true;
                    i = self.skip_group(i, hi);
                }
                Some('<') => {
                    seg_started = true;
                    i = self.skip_angles(i, hi);
                }
                _ => {
                    if params == 0 && self.ident(i) == Some("self") {
                        receiver = true;
                    }
                    seg_started = true;
                    i += 1;
                }
            }
        }
        if seg_started {
            params += 1;
        }
        if receiver {
            params = params.saturating_sub(1);
        }
        params
    }

    fn item_impl(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j) == Some('<') {
            j = self.skip_angles(j, end);
        }
        // Collect the self-type's path idents at angle depth 0; for
        // `impl Trait for Type` the idents after `for` win.
        let mut path: Vec<String> = Vec::new();
        let mut after_for = false;
        while j < end {
            match self.punct(j) {
                Some('{') => break,
                Some('<') => {
                    j = self.skip_angles(j, end);
                    continue;
                }
                Some('(') => {
                    j = self.skip_group(j, end);
                    continue;
                }
                _ => {}
            }
            if let Some(id) = self.ident(j) {
                match id {
                    "for" => {
                        after_for = true;
                        path.clear();
                    }
                    "where" => {
                        // Bounds may mention many types; stop collecting.
                        while j < end && self.punct(j) != Some('{') {
                            if self.punct(j) == Some('<') {
                                j = self.skip_angles(j, end);
                            } else {
                                j += 1;
                            }
                        }
                        break;
                    }
                    "mut" | "dyn" | "const" => {}
                    _ => path.push(id.to_string()),
                }
            }
            j += 1;
        }
        let _ = after_for;
        if self.punct(j) != Some('{') {
            return j;
        }
        let close = self.close_brace(j, end);
        let saved = self.owner.take();
        self.owner = path.pop();
        self.items(j + 1, close);
        self.owner = saved;
        close + 1
    }

    fn item_trait(&mut self, i: usize, end: usize) -> usize {
        let Some(name) = self.ident(i + 1).map(str::to_string) else {
            return i + 1;
        };
        let mut j = i + 2;
        while j < end && !matches!(self.punct(j), Some('{') | Some(';')) {
            if self.punct(j) == Some('<') {
                j = self.skip_angles(j, end);
            } else {
                j += 1;
            }
        }
        if self.punct(j) != Some('{') {
            return j + 1;
        }
        let close = self.close_brace(j, end);
        let saved = self.owner.take();
        self.owner = Some(name);
        self.items(j + 1, close);
        self.owner = saved;
        close + 1
    }

    /// Skip a `struct`/`enum`/`union` item: either `{…}`-bodied or a
    /// tuple/unit declaration ending in `;`.
    fn item_adt(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        while j < end {
            match self.punct(j) {
                Some('{') => return self.close_brace(j, end) + 1,
                Some(';') => return j + 1,
                Some('(') => j = self.skip_group(j, end),
                Some('<') => j = self.skip_angles(j, end),
                _ => j += 1,
            }
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileAst {
        let toks = lex(src);
        let mask = crate::scan::test_mask(&toks);
        let sig = Sig::new(&toks);
        parse_file(&sig, &mask)
    }

    #[test]
    fn free_fns_impl_methods_and_trait_impls() {
        let src = r#"
pub fn free(x: u8) -> u8 { x }
struct S { a: u8 }
impl S {
    pub(crate) fn method(&self) -> u8 { self.a }
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
trait T { fn decl(&self); fn with_default(&self) { } }
"#;
        let ast = parse(src);
        let names: Vec<(String, Option<String>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("S".into())),
                ("fmt".into(), Some("S".into())),
                ("decl".into(), Some("T".into())),
                ("with_default".into(), Some("T".into())),
            ]
        );
        assert!(ast.fns[3].body.is_none(), "bodyless trait decl");
        assert!(ast.fns[4].body.is_some(), "defaulted trait method");
    }

    #[test]
    fn inline_modules_and_test_mask() {
        let src = r#"
mod inner {
    pub fn deep() {}
}
#[cfg(test)]
mod tests {
    fn helper() {}
}
"#;
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].module, vec!["inner".to_string()]);
        assert!(!ast.fns[0].is_test);
        assert!(ast.fns[1].is_test);
    }

    #[test]
    fn generics_where_clauses_and_fn_arrows_do_not_derail() {
        let src = r#"
pub fn map<F, T>(xs: Vec<T>, f: F) -> Vec<T>
where
    F: Fn(T) -> T + Send,
{
    helper(xs, f)
}
impl<'a, T: Clone> Wrapper<'a, T> {
    fn get(&self) -> &T { &self.0 }
}
"#;
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].name, "map");
        assert!(ast.fns[0].body.is_some());
        assert_eq!(ast.fns[1].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn impl_for_reference_types_uses_the_concrete_type() {
        let src = "impl Render for &mut Board { fn draw(&self) {} }";
        let ast = parse(src);
        assert_eq!(ast.fns[0].owner.as_deref(), Some("Board"));
    }

    #[test]
    fn arity_excludes_receivers_and_survives_generic_commas() {
        let src = r#"
fn zero() {}
fn one(x: u8) -> u8 { x }
fn generic_commas(m: BTreeMap<u32, Vec<u8>>, n: u8) {}
fn tuple_pat((a, b): (u8, u8)) {}
fn fnptr(f: fn(u8, u8) -> u8, x: u8) {}
fn trailing(x: u8, y: u8,) {}
impl S {
    fn by_ref(&self) {}
    fn by_arc(self: Arc<Self>, j: usize) {}
    fn two(&mut self, a: u8, b: u8) {}
}
trait T { fn decl(&self, j: usize); }
"#;
        let ast = parse(src);
        let arities: Vec<(String, usize)> =
            ast.fns.iter().map(|f| (f.name.clone(), f.arity)).collect();
        assert_eq!(
            arities,
            vec![
                ("zero".into(), 0),
                ("one".into(), 1),
                ("generic_commas".into(), 2),
                ("tuple_pat".into(), 1),
                ("fnptr".into(), 2),
                ("trailing".into(), 2),
                ("by_ref".into(), 0),
                ("by_arc".into(), 1),
                ("two".into(), 2),
                ("decl".into(), 1),
            ]
        );
    }

    #[test]
    fn const_items_and_macros_are_skipped_without_losing_later_fns() {
        let src = r#"
const TABLE: &[(&str, u8)] = &[("a", 1)];
static BLOCK: u8 = { 40 + 2 };
macro_rules! noise { ($x:expr) => { $x }; }
fn after() {}
"#;
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "after");
    }
}
