//! Workspace symbol resolution: turn per-file ASTs into a single
//! fully-qualified function table with the lookup indices the call
//! graph needs.
//!
//! Resolution is *name-based and conservative*, not type-aware (same
//! policy as the token rules — see DESIGN.md §7 for the soundness
//! trade-offs). A function's fully-qualified name is derived purely
//! from its file-system location plus inline `mod` nesting:
//!
//! ```text
//! crates/service/src/wal.rs  →  tmwia_service::wal::WalWriter::append
//! crates/sim/src/experiments/e01_basic.rs
//!                            →  tmwia_sim::experiments::e01_basic::run
//! src/lib.rs                 →  tmwia::…
//! ```
//!
//! `use` declarations are deliberately ignored: lookups go by trailing
//! path segments (owner type, last module segment, bare name), which
//! over-approximates aliasing instead of modelling it. That is the safe
//! direction for reachability rules — extra candidate edges can only
//! *add* findings, never hide one.

use crate::parse::FileAst;
use std::collections::BTreeMap;

/// One function in the workspace table.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into the scanned file list.
    pub file: usize,
    /// Workspace-relative `/`-separated path of that file.
    pub path: String,
    /// Index of this fn inside its file's [`FileAst::fns`].
    pub local: usize,
    /// Function name.
    pub name: String,
    /// `impl`/`trait` owner type, if any.
    pub owner: Option<String>,
    /// Full module path: crate segment, file-system mods, inline mods.
    pub module: Vec<String>,
    /// 1-based definition line.
    pub line: u32,
    /// Body significant-token range (half-open), if the fn has one.
    pub body: Option<(usize, usize)>,
    /// Defined inside a test span.
    pub is_test: bool,
    /// Parameter count excluding any `self` receiver (see
    /// [`crate::parse::FnDef::arity`]).
    pub arity: usize,
}

impl FnInfo {
    /// `crate::mods::Owner::name` — the display / pattern-match form.
    pub fn fqn(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if let Some(o) = &self.owner {
            parts.push(o);
        }
        parts.push(&self.name);
        parts.join("::")
    }

    /// Short display form for chain traces: `Owner::name` or `name`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The resolved workspace: every recognised function plus indices for
/// the resolution strategies in [`crate::callgraph`].
#[derive(Debug, Default)]
pub struct Workspace {
    /// All functions, in (file, source) order.
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
    methods: BTreeMap<String, Vec<usize>>,
    free: BTreeMap<String, Vec<usize>>,
    by_owner: BTreeMap<(String, String), Vec<usize>>,
    by_module: BTreeMap<(String, String), Vec<usize>>,
}

/// Map a workspace-relative file path to its module path (crate
/// segment first). Unrecognised layouts fall back to the path
/// components themselves so fixtures in odd places still resolve.
pub fn module_path_of(path: &str) -> Vec<String> {
    let parts: Vec<&str> = path.split('/').collect();
    let (crate_seg, rest): (String, &[&str]) = match parts.as_slice() {
        ["crates", name, "src", rest @ ..] => (format!("tmwia_{}", name.replace('-', "_")), rest),
        ["src", rest @ ..] => ("tmwia".to_string(), rest),
        other => {
            // e.g. fixture trees: use every component as-is.
            let mut out: Vec<String> = other
                .iter()
                .map(|s| s.trim_end_matches(".rs").replace('-', "_"))
                .collect();
            if let Some(last) = out.last() {
                if last == "lib" || last == "main" || last == "mod" {
                    out.pop();
                }
            }
            return out;
        }
    };
    let mut out = vec![crate_seg];
    for (i, seg) in rest.iter().enumerate() {
        let is_last = i + 1 == rest.len();
        if is_last {
            let stem = seg.trim_end_matches(".rs");
            match stem {
                "lib" | "main" | "mod" => {}
                _ => {
                    // `src/bin/name.rs` is its own root; keep `name`
                    // as the distinguishing segment either way.
                    out.push(stem.replace('-', "_"));
                }
            }
        } else if *seg != "bin" {
            out.push(seg.replace('-', "_"));
        }
    }
    out
}

impl Workspace {
    /// Build the table from parsed files. `files` pairs each relative
    /// path with its AST; order defines the deterministic fn ids.
    pub fn build(files: &[(String, FileAst)]) -> Self {
        let mut ws = Workspace::default();
        for (fi, (path, ast)) in files.iter().enumerate() {
            let fs_mods = module_path_of(path);
            for (li, def) in ast.fns.iter().enumerate() {
                let mut module = fs_mods.clone();
                module.extend(def.module.iter().cloned());
                let id = ws.fns.len();
                let info = FnInfo {
                    file: fi,
                    path: path.clone(),
                    local: li,
                    name: def.name.clone(),
                    owner: def.owner.clone(),
                    module,
                    line: def.line,
                    body: def.body,
                    is_test: def.is_test,
                    arity: def.arity,
                };
                ws.by_name.entry(info.name.clone()).or_default().push(id);
                match &info.owner {
                    Some(o) => {
                        ws.methods.entry(info.name.clone()).or_default().push(id);
                        ws.by_owner
                            .entry((o.clone(), info.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => {
                        ws.free.entry(info.name.clone()).or_default().push(id);
                        if let Some(last_mod) = info.module.last() {
                            ws.by_module
                                .entry((last_mod.clone(), info.name.clone()))
                                .or_default()
                                .push(id);
                        }
                    }
                }
                ws.fns.push(info);
            }
        }
        ws
    }

    /// Every fn named `name`, any kind.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Methods (owner-attached fns) named `name`.
    pub fn methods_named(&self, name: &str) -> &[usize] {
        self.methods.get(name).map_or(&[], Vec::as_slice)
    }

    /// Free fns named `name`.
    pub fn free_named(&self, name: &str) -> &[usize] {
        self.free.get(name).map_or(&[], Vec::as_slice)
    }

    /// Methods of `owner` named `name`.
    pub fn of_owner(&self, owner: &str, name: &str) -> &[usize] {
        self.by_owner
            .get(&(owner.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// Free fns named `name` in a module whose last segment is `seg`.
    pub fn in_module(&self, seg: &str, name: &str) -> &[usize] {
        self.by_module
            .get(&(seg.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// Function ids whose FQN suffix-matches `pattern` (segments split
    /// on `::`; `*` matches exactly one segment). Test fns never match.
    pub fn matching(&self, pattern: &str) -> Vec<usize> {
        let pat: Vec<&str> = pattern.split("::").collect();
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && fqn_suffix_matches(&f.fqn(), &pat))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Does `fqn`'s trailing segments match `pat` (with `*` wildcards)?
pub fn fqn_suffix_matches(fqn: &str, pat: &[&str]) -> bool {
    let segs: Vec<&str> = fqn.split("::").collect();
    if pat.len() > segs.len() {
        return false;
    }
    segs[segs.len() - pat.len()..]
        .iter()
        .zip(pat)
        .all(|(s, p)| *p == "*" || s == p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths_follow_the_cargo_layout() {
        assert_eq!(
            module_path_of("crates/service/src/wal.rs"),
            ["tmwia_service", "wal"]
        );
        assert_eq!(module_path_of("crates/core/src/lib.rs"), ["tmwia_core"]);
        assert_eq!(
            module_path_of("crates/sim/src/experiments/mod.rs"),
            ["tmwia_sim", "experiments"]
        );
        assert_eq!(
            module_path_of("crates/sim/src/experiments/e01_basic.rs"),
            ["tmwia_sim", "experiments", "e01_basic"]
        );
        assert_eq!(
            module_path_of("crates/bench/src/bin/kernel.rs"),
            ["tmwia_bench", "kernel"]
        );
        assert_eq!(module_path_of("src/main.rs"), ["tmwia"]);
    }

    #[test]
    fn suffix_patterns_with_wildcards() {
        assert!(fqn_suffix_matches(
            "tmwia_sim::experiments::e01_basic::run",
            &["experiments", "*", "run"]
        ));
        assert!(fqn_suffix_matches(
            "tmwia_service::service::Service::tick",
            &["Service", "tick"]
        ));
        assert!(!fqn_suffix_matches(
            "tmwia_sim::experiments::e01_basic::run_inner",
            &["experiments", "*", "run"]
        ));
        assert!(!fqn_suffix_matches("run", &["experiments", "*", "run"]));
    }
}
