//! `tmwia-lint.toml` — which rules scan which paths.
//!
//! The parser is a deliberately tiny TOML subset (the same no-registry
//! policy as `shims/`): `[section]` headers, `key = "string"`, and
//! `key = ["a", "b"]` string arrays. Comments start with `#` at the
//! beginning of a line or after whitespace outside quotes.

use std::collections::BTreeMap;

/// Scope of one rule: path prefixes it applies to, plus the
/// interprocedural knobs (entry points, taint sources, sanctioned
/// boundary functions) the call-graph rules read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleScope {
    /// Workspace-relative path prefixes scanned by this rule.
    pub include: Vec<String>,
    /// FQN suffix patterns (`*` matches one segment) selecting the
    /// reachability roots, e.g. `experiments::*::run`.
    pub entry: Vec<String>,
    /// FQN suffix patterns for taint sources (oracle-taint).
    pub source: Vec<String>,
    /// FQN suffix patterns for sanctioned channels that *cut* taint
    /// propagation (oracle-taint), e.g. the paid-probe API.
    pub boundary: Vec<String>,
}

/// Parsed configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Path prefixes no rule ever scans (fixture trees, `target/`).
    pub exclude: Vec<String>,
    /// Per-rule scopes, keyed by rule id.
    pub rules: BTreeMap<String, RuleScope>,
}

/// Configuration parse errors, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number in the config file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// The built-in default: the scopes the workspace is enforced
    /// under when `tmwia-lint.toml` is absent. Kept in sync with the
    /// checked-in config file by `tests/fixtures.rs`.
    pub fn default_workspace() -> Self {
        let mut rules = BTreeMap::new();
        rules.insert(
            "oracle-isolation".to_string(),
            RuleScope {
                include: vec!["crates/core/src".into()],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "determinism".to_string(),
            RuleScope {
                include: vec![
                    "crates/core/src".into(),
                    "crates/model/src".into(),
                    "crates/baselines/src".into(),
                    "crates/billboard/src".into(),
                    "crates/sim/src".into(),
                    "crates/obs/src".into(),
                    "crates/service/src".into(),
                    "crates/cli/src".into(),
                    "crates/lint/src".into(),
                    "src".into(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "unsafe-hygiene".to_string(),
            RuleScope {
                include: vec!["crates".into(), "shims".into(), "src".into()],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "panic-hygiene".to_string(),
            RuleScope {
                include: vec![
                    "crates/core/src".into(),
                    "crates/model/src".into(),
                    "crates/baselines/src".into(),
                    "crates/billboard/src".into(),
                    "crates/sim/src".into(),
                    "crates/obs/src".into(),
                    "crates/service/src".into(),
                    "crates/lint/src".into(),
                    "src".into(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "obs-timing".to_string(),
            RuleScope {
                include: vec!["crates/obs/src".into(), "crates/service/src".into()],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "oracle-taint".to_string(),
            RuleScope {
                include: vec!["crates/core/src".into()],
                source: vec![
                    "ProbeEngine::truth".into(),
                    "PlayerHandle::probe_fresh".into(),
                    "DynamicTruth::truth".into(),
                    "PrefMatrix::value".into(),
                    "PrefMatrix::row".into(),
                    "PrefMatrix::rows".into(),
                    "PrefMatrix::player_dist".into(),
                    "PrefMatrix::diameter_of".into(),
                ],
                boundary: vec![
                    "PlayerHandle::probe".into(),
                    "PlayerHandle::already_probed".into(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "determinism-reach".to_string(),
            RuleScope {
                include: vec!["crates/sim/src".into(), "crates/service/src".into()],
                entry: vec![
                    "experiments::*::run".into(),
                    "Service::tick".into(),
                    "Relay::tick".into(),
                    "run_shard_worker".into(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "panic-reach".to_string(),
            RuleScope {
                include: vec!["crates/service/src".into()],
                entry: vec![
                    "Service::tick".into(),
                    "Service::submit".into(),
                    "Service::submit_teardown".into(),
                    "Service::recover".into(),
                    "WalWriter::open".into(),
                    "WalWriter::append".into(),
                    "tcp::serve".into(),
                    "tcp::handle_conn".into(),
                    "tcp::ticker_loop".into(),
                ],
                ..RuleScope::default()
            },
        );
        rules.insert(
            "wal-protocol".to_string(),
            RuleScope {
                include: vec!["crates/service/src/wal.rs".into()],
                ..RuleScope::default()
            },
        );
        Config {
            exclude: vec!["crates/lint/tests/fixtures".into(), "target".into()],
            rules,
        }
    }

    /// Parse the TOML-subset text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = Config {
            exclude: Vec::new(),
            rules: BTreeMap::new(),
        };
        let mut section: Option<String> = None;
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0usize;
        while i < lines.len() {
            let lineno = (i + 1) as u32;
            let mut line = strip_comment(lines[i]).trim().to_string();
            // Multi-line arrays: keep appending lines until brackets
            // close (quotes are respected by strip_comment only, so
            // `[`/`]` inside strings would miscount — the paths this
            // config holds contain neither).
            while line.contains('[')
                && !line.starts_with('[')
                && bracket_balance(&line) > 0
                && i + 1 < lines.len()
            {
                i += 1;
                line.push(' ');
                line.push_str(strip_comment(lines[i]).trim());
            }
            i += 1;
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(name.trim().to_string());
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got '{line}'"),
            })?;
            let key = key.trim();
            let values = parse_string_or_array(value.trim()).ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected a string or [\"…\"] array after `{key} =`"),
            })?;
            match section.as_deref() {
                Some("global") => {
                    if key == "exclude" {
                        cfg.exclude = values;
                    } else {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown [global] key '{key}'"),
                        });
                    }
                }
                Some(name) if name.starts_with("rules.") => {
                    let rule = name["rules.".len()..].to_string();
                    let scope = cfg.rules.entry(rule).or_default();
                    match key {
                        "include" => scope.include = values,
                        "entry" => scope.entry = values,
                        "source" => scope.source = values,
                        "boundary" => scope.boundary = values,
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown rule key '{key}'"),
                            });
                        }
                    }
                }
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!(
                            "key outside a [global] or [rules.<id>] section (in {other:?})"
                        ),
                    });
                }
            }
        }
        Ok(cfg)
    }

    /// Is `path` (workspace-relative, `/`-separated) globally excluded?
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(path, p))
    }

    /// Rule ids whose scope covers `path`, in deterministic order.
    pub fn rules_for(&self, path: &str) -> Vec<&str> {
        if self.is_excluded(path) {
            return Vec::new();
        }
        self.rules
            .iter()
            .filter(|(_, scope)| scope.include.iter().any(|p| path_has_prefix(path, p)))
            .map(|(id, _)| id.as_str())
            .collect()
    }
}

fn bracket_balance(s: &str) -> i32 {
    let mut bal = 0i32;
    let mut in_str = false;
    for b in s.bytes() {
        match b {
            b'"' => in_str = !in_str,
            b'[' if !in_str => bal += 1,
            b']' if !in_str => bal -= 1,
            _ => {}
        }
    }
    bal
}

/// Path-component-aware prefix test: `crates/core/src` covers
/// `crates/core/src/foo.rs` but `crates/co` does not.
fn path_has_prefix(path: &str, prefix: &str) -> bool {
    match path.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('/'),
        None => false,
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_string_or_array(v: &str) -> Option<Vec<String>> {
    if let Some(inner) = v.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(parse_string(part)?);
        }
        Some(out)
    } else {
        Some(vec![parse_string(v)?])
    }
}

fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&s[start..]);
    parts
}

fn parse_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    // The paths this config holds never need escapes; reject rather
    // than mis-parse.
    if inner.contains('\\') || inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let text = r#"
# top comment
[global]
exclude = ["target", "crates/lint/tests/fixtures"] # trailing

[rules.determinism]
include = ["crates/core/src", "src"]

[rules.panic-hygiene]
include = "crates/model/src"
"#;
        let cfg = Config::parse(text).unwrap();
        assert_eq!(cfg.exclude.len(), 2);
        assert_eq!(
            cfg.rules["determinism"].include,
            vec!["crates/core/src", "src"]
        );
        assert_eq!(cfg.rules["panic-hygiene"].include, vec!["crates/model/src"]);
    }

    #[test]
    fn scoping_is_component_aware() {
        let cfg = Config::parse("[rules.determinism]\ninclude = [\"crates/core/src\"]\n").unwrap();
        assert_eq!(
            cfg.rules_for("crates/core/src/coalesce.rs"),
            vec!["determinism"]
        );
        assert!(cfg.rules_for("crates/core/srcs/evil.rs").is_empty());
        assert!(cfg.rules_for("crates/core/tests/x.rs").is_empty());
    }

    #[test]
    fn excluded_paths_match_no_rules() {
        let mut cfg = Config::default_workspace();
        cfg.exclude = vec!["crates/lint/tests/fixtures".into()];
        assert!(cfg
            .rules_for("crates/lint/tests/fixtures/panic_violation.rs")
            .is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Config::parse("[global]\nbogus value\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Config::parse("stray = \"x\"\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn default_covers_core_with_all_but_itself() {
        let cfg = Config::default_workspace();
        let rules = cfg.rules_for("crates/core/src/zero_radius.rs");
        assert_eq!(
            rules,
            vec![
                "determinism",
                "oracle-isolation",
                "oracle-taint",
                "panic-hygiene",
                "unsafe-hygiene"
            ]
        );
    }
}
