//! The four rule families.
//!
//! Rules are token-pattern scanners over the output of [`crate::lexer`]
//! — deliberately not type-aware. The discipline they enforce is
//! structural (which *names* may appear in which crates), so name-level
//! matching is exact enough, and anything type-level would need a full
//! front-end. False positives have an escape hatch: the
//! `// lint:allow(<rule>) reason` suppression handled in
//! [`crate::scan`].

use crate::lexer::{Tok, Token};

/// One reported violation (before suppression filtering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// Rule id, e.g. `oracle-isolation`.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// All rule ids, with one-line descriptions (for `tmwia-lint rules`).
pub const RULES: &[(&str, &str)] = &[
    (
        "oracle-isolation",
        "ground truth (`.truth()`, raw `PrefMatrix`) and probe-memo bypasses \
         (`.probe_fresh()`) are forbidden in algorithm crates outside tests",
    ),
    (
        "determinism",
        "no `HashMap`/`HashSet`, wall clocks (`Instant`/`SystemTime`), or \
         unseeded RNGs in fixed-seed algorithm paths",
    ),
    (
        "unsafe-hygiene",
        "every `unsafe` needs an adjacent `// SAFETY:` comment stating its \
         preconditions",
    ),
    (
        "panic-hygiene",
        "no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in library code \
         outside tests",
    ),
];

/// A token view that skips comments but remembers each token's index in
/// the full stream (the unsafe-hygiene rule needs to look back through
/// comments).
pub struct Sig<'a> {
    /// `(index_in_full_stream, token)` for every non-comment token.
    pub toks: Vec<(usize, &'a Token)>,
}

impl<'a> Sig<'a> {
    /// Build the significant-token view.
    pub fn new(all: &'a [Token]) -> Self {
        Sig {
            toks: all
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_)))
                .collect(),
        }
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match &self.toks.get(i)?.1.kind {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i)?.1.kind {
            Tok::Punct(c) => Some(c),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> u32 {
        self.toks[i].1.line
    }
}

/// Is significant token `i` a method-style call of `name` — i.e.
/// `.name(`, `::name(`?
fn is_call(sig: &Sig<'_>, i: usize, name: &str) -> bool {
    sig.ident(i) == Some(name)
        && matches!(sig.punct(i.wrapping_sub(1)), Some('.') | Some(':'))
        && sig.punct(i + 1) == Some('(')
}

/// `oracle-isolation`: the probe is the only sanctioned channel from
/// the hidden truth to an algorithm (every probe-cost bound in
/// Theorems 1–5 depends on it), so algorithm crates must not name the
/// ground-truth surface at all.
pub fn oracle_isolation(sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    for i in 0..sig.toks.len() {
        if test_mask[sig.toks[i].0] {
            continue;
        }
        if is_call(sig, i, "truth") {
            out.push(RawFinding {
                rule: "oracle-isolation",
                line: sig.line(i),
                message: "ground-truth accessor `.truth()` called in an algorithm crate; \
                          algorithms may only learn grades via paid probes"
                    .into(),
            });
        } else if is_call(sig, i, "probe_fresh") {
            out.push(RawFinding {
                rule: "oracle-isolation",
                line: sig.line(i),
                message: "`.probe_fresh()` bypasses the probe memo; each use must carry a \
                          `lint:allow` citing the paper remark that sanctions strict re-pay \
                          semantics"
                    .into(),
            });
        } else if sig.ident(i) == Some("PrefMatrix") {
            out.push(RawFinding {
                rule: "oracle-isolation",
                line: sig.line(i),
                message: "raw `PrefMatrix` named in an algorithm crate; the hidden matrix is \
                          reachable only through `ProbeEngine`"
                    .into(),
            });
        }
    }
}

/// `determinism`: experiment tables are pinned byte-for-byte under a
/// fixed seed, so algorithm paths must avoid every source of run-to-run
/// variation: randomized-iteration containers, wall clocks, and
/// OS-entropy RNGs.
pub fn determinism(sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    for i in 0..sig.toks.len() {
        if test_mask[sig.toks[i].0] {
            continue;
        }
        let Some(id) = sig.ident(i) else { continue };
        let message = match id {
            "HashMap" | "HashSet" => format!(
                "`{id}` iteration order varies run to run; use `BTree{}` or drain in \
                 sorted order",
                &id[4..]
            ),
            "Instant" | "SystemTime" => format!(
                "wall-clock read (`{id}`) in an algorithm path breaks fixed-seed \
                 reproducibility"
            ),
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => format!(
                "unseeded RNG (`{id}`); derive all randomness from the experiment seed \
                 (`rng_for`)"
            ),
            _ => continue,
        };
        out.push(RawFinding {
            rule: "determinism",
            line: sig.line(i),
            message,
        });
    }
}

/// `unsafe-hygiene`: each `unsafe` keyword must have a `// SAFETY:`
/// comment (or a `# Safety` doc section) in the contiguous comment run
/// ending within the few lines above it — attributes such as
/// `#[target_feature]` may sit between, and long SAFETY blocks may
/// start above the window as long as the run reaches down into it.
pub fn unsafe_hygiene(all: &[Token], sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    const WINDOW: u32 = 8;
    for i in 0..sig.toks.len() {
        let (full_idx, tok) = sig.toks[i];
        if test_mask[full_idx] || !matches!(&tok.kind, Tok::Ident(s) if s == "unsafe") {
            continue;
        }
        let line = tok.line;
        // Find the contiguous comment run that ends within WINDOW lines
        // above the `unsafe` (attributes may sit between), then search
        // the whole run: a thorough SAFETY block may start further up
        // than WINDOW lines even though it *ends* adjacent.
        let mut documented = false;
        let mut run_line: Option<u32> = None;
        for t in all[..full_idx].iter().rev() {
            let (Tok::LineComment(text) | Tok::BlockComment(text)) = &t.kind else {
                continue;
            };
            match run_line {
                // Nearest comment must end within the window…
                None if t.line + WINDOW < line => break,
                // …and earlier ones must be contiguous with the run.
                Some(prev) if t.line + 1 < prev => break,
                _ => {}
            }
            if text.contains("SAFETY:") || text.contains("# Safety") {
                documented = true;
                break;
            }
            run_line = Some(t.line);
        }
        if !documented {
            out.push(RawFinding {
                rule: "unsafe-hygiene",
                line,
                message: "`unsafe` without an adjacent `// SAFETY:` comment stating the \
                          preconditions it relies on"
                    .into(),
            });
        }
    }
}

/// `panic-hygiene`: library code reports failures through `Result` (or
/// documented `assert!` preconditions); aborting macros and
/// `unwrap`/`expect` are reserved for tests unless a `lint:allow`
/// states the invariant that rules the panic out.
pub fn panic_hygiene(sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    for i in 0..sig.toks.len() {
        if test_mask[sig.toks[i].0] {
            continue;
        }
        let Some(id) = sig.ident(i) else { continue };
        let message = match id {
            "unwrap" | "expect" if is_call(sig, i, id) => format!(
                "`.{id}()` in library code; propagate a `Result`, supply a default, or \
                 `lint:allow` a documented invariant"
            ),
            "panic" | "unreachable" | "todo" | "unimplemented" if sig.punct(i + 1) == Some('!') => {
                format!("`{id}!` in library code; return an error or `lint:allow` a documented invariant")
            }
            _ => continue,
        };
        out.push(RawFinding {
            rule: "panic-hygiene",
            line: sig.line(i),
            message,
        });
    }
}
