//! The rule families: file-local token patterns and workspace
//! call-graph rules.
//!
//! The file-local rules are token-pattern scanners over the output of
//! [`crate::lexer`] — deliberately not type-aware. The discipline they
//! enforce is structural (which *names* may appear in which crates),
//! so name-level matching is exact enough, and anything type-level
//! would need a full front-end. The interprocedural rules layer a
//! conservative call graph ([`crate::callgraph`]) on top and check
//! *reachability*: a helper function can no longer launder a
//! ground-truth access or a wall-clock read past a per-file scan.
//! False positives have an escape hatch either way: the
//! `// lint:allow(<rule>) reason` suppression handled in
//! [`crate::scan`].

use crate::callgraph::{chain_to, CallGraph};
use crate::config::{Config, RuleScope};
use crate::lexer::{Tok, Token};
use crate::parse::FileAst;
use crate::resolve::Workspace;
use std::collections::{BTreeSet, VecDeque};

/// One hop of a call-chain trace: `func` makes the next call at
/// `path:line` (the final hop's line is the sink/source line, or 0
/// when it has none).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainHop {
    /// Display name (`Owner::name` or `name`).
    pub func: String,
    /// Workspace-relative file of `func`.
    pub path: String,
    /// 1-based line of the call this hop makes (or of the sink).
    pub line: u32,
}

/// One reported violation (before suppression filtering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// Rule id, e.g. `oracle-isolation`.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Call-chain trace for interprocedural findings (empty for
    /// file-local rules).
    pub chain: Vec<ChainHop>,
}

impl RawFinding {
    fn new(rule: &'static str, line: u32, message: String) -> Self {
        RawFinding {
            rule,
            line,
            message,
            chain: Vec::new(),
        }
    }
}

/// All rule ids, with one-line descriptions (for `tmwia-lint rules`).
pub const RULES: &[(&str, &str)] = &[
    (
        "oracle-isolation",
        "ground truth (`.truth()`, raw `PrefMatrix`) and probe-memo bypasses \
         (`.probe_fresh()`) are forbidden in algorithm crates outside tests",
    ),
    (
        "determinism",
        "no `HashMap`/`HashSet`, wall clocks (`Instant`/`SystemTime`), or \
         unseeded RNGs in fixed-seed algorithm paths",
    ),
    (
        "unsafe-hygiene",
        "every `unsafe` needs an adjacent `// SAFETY:` comment stating its \
         preconditions",
    ),
    (
        "panic-hygiene",
        "no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in library code \
         outside tests",
    ),
    (
        "obs-timing",
        "on obs-instrumented paths the only wall-clock read is the quarantined \
         sink `tmwia_obs::timing::wall_clock_micros`, and `install_clock` may \
         be called only at the operational boundary (the CLI)",
    ),
    (
        "oracle-taint",
        "no call chain from an algorithm crate may reach the hidden truth \
         (`ProbeEngine::truth`, `PrefMatrix` row/value accessors, \
         `probe_fresh`) except through the paid-probe boundary — catches \
         helper-function laundering the file-local rule misses",
    ),
    (
        "determinism-reach",
        "nothing reachable from an experiment `run` or `Service::tick` may \
         touch wall clocks, unseeded RNGs, or unordered-iteration containers",
    ),
    (
        "panic-reach",
        "serving hot paths (tick/submit, WAL append/recover, TCP dispatch) \
         must not transitively reach `unwrap`/`expect`/`panic!`",
    ),
    (
        "wal-protocol",
        "inside `wal.rs`, writer state may be mutated only after the buffered \
         append has been fsynced (write-ahead ordering, checked per function)",
    ),
];

/// A token view that skips comments but remembers each token's index in
/// the full stream (the unsafe-hygiene rule needs to look back through
/// comments).
pub struct Sig<'a> {
    /// `(index_in_full_stream, token)` for every non-comment token.
    pub toks: Vec<(usize, &'a Token)>,
}

impl<'a> Sig<'a> {
    /// Build the significant-token view.
    pub fn new(all: &'a [Token]) -> Self {
        Sig {
            toks: all
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_)))
                .collect(),
        }
    }

    /// The identifier at significant index `i`, if any.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match &self.toks.get(i)?.1.kind {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The punctuation character at significant index `i`, if any.
    pub fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i)?.1.kind {
            Tok::Punct(c) => Some(c),
            _ => None,
        }
    }

    /// 1-based source line of significant index `i`.
    pub fn line(&self, i: usize) -> u32 {
        self.toks[i].1.line
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// Whether the view holds no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }
}

/// Is significant token `i` a method-style call of `name` — i.e.
/// `.name(`, `::name(`?
pub(crate) fn is_call(sig: &Sig<'_>, i: usize, name: &str) -> bool {
    sig.ident(i) == Some(name)
        && matches!(sig.punct(i.wrapping_sub(1)), Some('.') | Some(':'))
        && sig.punct(i + 1) == Some('(')
}

/// `oracle-isolation`: the probe is the only sanctioned channel from
/// the hidden truth to an algorithm (every probe-cost bound in
/// Theorems 1–5 depends on it), so algorithm crates must not name the
/// ground-truth surface at all.
pub fn oracle_isolation(sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    for i in 0..sig.toks.len() {
        if test_mask[sig.toks[i].0] {
            continue;
        }
        if is_call(sig, i, "truth") {
            out.push(RawFinding::new(
                "oracle-isolation",
                sig.line(i),
                "ground-truth accessor `.truth()` called in an algorithm crate; \
                 algorithms may only learn grades via paid probes"
                    .into(),
            ));
        } else if is_call(sig, i, "probe_fresh") {
            out.push(RawFinding::new(
                "oracle-isolation",
                sig.line(i),
                "`.probe_fresh()` bypasses the probe memo; each use must carry a \
                 `lint:allow` citing the paper remark that sanctions strict re-pay \
                 semantics"
                    .into(),
            ));
        } else if sig.ident(i) == Some("PrefMatrix") {
            out.push(RawFinding::new(
                "oracle-isolation",
                sig.line(i),
                "raw `PrefMatrix` named in an algorithm crate; the hidden matrix is \
                 reachable only through `ProbeEngine`"
                    .into(),
            ));
        }
    }
}

/// `determinism`: experiment tables are pinned byte-for-byte under a
/// fixed seed, so algorithm paths must avoid every source of run-to-run
/// variation: randomized-iteration containers, wall clocks, and
/// OS-entropy RNGs.
pub fn determinism(sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    for i in 0..sig.toks.len() {
        if test_mask[sig.toks[i].0] {
            continue;
        }
        let Some(id) = sig.ident(i) else { continue };
        let message = match id {
            "HashMap" | "HashSet" => format!(
                "`{id}` iteration order varies run to run; use `BTree{}` or drain in \
                 sorted order",
                &id[4..]
            ),
            "Instant" | "SystemTime" => format!(
                "wall-clock read (`{id}`) in an algorithm path breaks fixed-seed \
                 reproducibility"
            ),
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => format!(
                "unseeded RNG (`{id}`); derive all randomness from the experiment seed \
                 (`rng_for`)"
            ),
            _ => continue,
        };
        out.push(RawFinding::new("determinism", sig.line(i), message));
    }
}

/// `obs-timing`: metric exports are compared byte-for-byte across
/// topologies, which only works because every timestamp flows through
/// one quarantined sink. Library code on an obs-instrumented path must
/// not read a wall clock directly, and must not install a clock into a
/// registry — that is the CLI's privilege at the operational boundary.
pub fn obs_timing(sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    for i in 0..sig.toks.len() {
        if test_mask[sig.toks[i].0] {
            continue;
        }
        let Some(id) = sig.ident(i) else { continue };
        let message = match id {
            "Instant" | "SystemTime" => format!(
                "wall-clock read (`{id}`) outside the quarantined timing sink; \
                 route time through `tmwia_obs::timing::wall_clock_micros` so \
                 exports stay byte-comparable"
            ),
            "install_clock" if is_call(sig, i, "install_clock") => {
                "`install_clock` outside the operational boundary; only the CLI \
                 may make registry timestamps non-zero"
                    .to_string()
            }
            _ => continue,
        };
        out.push(RawFinding::new("obs-timing", sig.line(i), message));
    }
}

/// `unsafe-hygiene`: each `unsafe` keyword must have a `// SAFETY:`
/// comment (or a `# Safety` doc section) in the contiguous comment run
/// ending within the few lines above it — attributes such as
/// `#[target_feature]` may sit between, and long SAFETY blocks may
/// start above the window as long as the run reaches down into it.
pub fn unsafe_hygiene(all: &[Token], sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    const WINDOW: u32 = 8;
    for i in 0..sig.toks.len() {
        let (full_idx, tok) = sig.toks[i];
        if test_mask[full_idx] || !matches!(&tok.kind, Tok::Ident(s) if s == "unsafe") {
            continue;
        }
        let line = tok.line;
        // Find the contiguous comment run that ends within WINDOW lines
        // above the `unsafe` (attributes may sit between), then search
        // the whole run: a thorough SAFETY block may start further up
        // than WINDOW lines even though it *ends* adjacent.
        let mut documented = false;
        let mut run_line: Option<u32> = None;
        for t in all[..full_idx].iter().rev() {
            let (Tok::LineComment(text) | Tok::BlockComment(text)) = &t.kind else {
                continue;
            };
            match run_line {
                // Nearest comment must end within the window…
                None if t.line + WINDOW < line => break,
                // …and earlier ones must be contiguous with the run.
                Some(prev) if t.line + 1 < prev => break,
                _ => {}
            }
            if text.contains("SAFETY:") || text.contains("# Safety") {
                documented = true;
                break;
            }
            run_line = Some(t.line);
        }
        if !documented {
            out.push(RawFinding::new(
                "unsafe-hygiene",
                line,
                "`unsafe` without an adjacent `// SAFETY:` comment stating the \
                 preconditions it relies on"
                    .into(),
            ));
        }
    }
}

/// `panic-hygiene`: library code reports failures through `Result` (or
/// documented `assert!` preconditions); aborting macros and
/// `unwrap`/`expect` are reserved for tests unless a `lint:allow`
/// states the invariant that rules the panic out.
pub fn panic_hygiene(sig: &Sig<'_>, test_mask: &[bool], out: &mut Vec<RawFinding>) {
    for i in 0..sig.toks.len() {
        if test_mask[sig.toks[i].0] {
            continue;
        }
        let Some(id) = sig.ident(i) else { continue };
        let message = match id {
            "unwrap" | "expect" if is_call(sig, i, id) => format!(
                "`.{id}()` in library code; propagate a `Result`, supply a default, or \
                 `lint:allow` a documented invariant"
            ),
            "panic" | "unreachable" | "todo" | "unimplemented" if sig.punct(i + 1) == Some('!') => {
                format!("`{id}!` in library code; return an error or `lint:allow` a documented invariant")
            }
            _ => continue,
        };
        out.push(RawFinding::new("panic-hygiene", sig.line(i), message));
    }
}

// ---------------------------------------------------------------------------
// Interprocedural rules (call-graph layer)
// ---------------------------------------------------------------------------

/// A finding attributed to a specific workspace file.
#[derive(Debug, Clone)]
pub struct WsFinding {
    /// Workspace-relative path the finding anchors to (the caller /
    /// entry-point file, where a suppression would go).
    pub path: String,
    /// The finding itself.
    pub raw: RawFinding,
}

/// Determinism sinks inside a significant-token range: `(line, ident)`.
fn det_sinks(sig: &Sig<'_>, lo: usize, hi: usize) -> Vec<(u32, &'static str)> {
    let mut out = Vec::new();
    for i in lo..hi.min(sig.len()) {
        let Some(id) = sig.ident(i) else { continue };
        let hit = match id {
            "HashMap" => "HashMap",
            "HashSet" => "HashSet",
            "Instant" => "Instant",
            "SystemTime" => "SystemTime",
            "thread_rng" => "thread_rng",
            "from_entropy" => "from_entropy",
            "OsRng" => "OsRng",
            "getrandom" => "getrandom",
            _ => continue,
        };
        out.push((sig.line(i), hit));
    }
    out
}

/// Panic sinks inside a significant-token range: `(line, ident)`.
/// `assert!` is deliberately excluded — the workspace treats asserts as
/// documented preconditions (see panic-hygiene), and this rule targets
/// abort paths a malformed request could drive, not invariant checks.
fn panic_sinks(sig: &Sig<'_>, lo: usize, hi: usize) -> Vec<(u32, &'static str)> {
    let mut out = Vec::new();
    for i in lo..hi.min(sig.len()) {
        let Some(id) = sig.ident(i) else { continue };
        let hit = match id {
            "unwrap" if is_call(sig, i, "unwrap") => "unwrap",
            "expect" if is_call(sig, i, "expect") => "expect",
            "panic" | "unreachable" | "todo" | "unimplemented" if sig.punct(i + 1) == Some('!') => {
                match id {
                    "panic" => "panic!",
                    "unreachable" => "unreachable!",
                    "todo" => "todo!",
                    _ => "unimplemented!",
                }
            }
            _ => continue,
        };
        out.push((sig.line(i), hit));
    }
    out
}

/// Function ids matching any of `patterns`, restricted to files the
/// rule's scope covers when `scoped` is set.
fn select_fns(ws: &Workspace, patterns: &[String], scope: Option<(&Config, &str)>) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for pat in patterns {
        out.extend(ws.matching(pat));
    }
    out.sort_unstable();
    out.dedup();
    if let Some((config, rule)) = scope {
        out.retain(|&id| config.rules_for(&ws.fns[id].path).contains(&rule));
    }
    out
}

/// Render the hops for `chain` fn-id/line pairs.
fn hops(ws: &Workspace, chain: &[(usize, u32)]) -> Vec<ChainHop> {
    chain
        .iter()
        .map(|&(id, line)| ChainHop {
            func: ws.fns[id].display(),
            path: ws.fns[id].path.clone(),
            line,
        })
        .collect()
}

/// `oracle-taint`: reverse-reachability from the ground-truth surface.
/// A function is *tainted* if some call chain from it reaches a source
/// without passing through a sanctioned boundary fn (the paid probe).
/// Reported: every call edge from a non-test fn in the rule's scope to
/// a tainted fn outside the scope (direct in-scope source usage is the
/// file-local `oracle-isolation` rule's job).
pub fn oracle_taint(
    ws: &Workspace,
    cg: &CallGraph,
    scope: &RuleScope,
    config: &Config,
    out: &mut Vec<WsFinding>,
) {
    let sources: BTreeSet<usize> = select_fns(ws, &scope.source, None).into_iter().collect();
    let boundary: BTreeSet<usize> = select_fns(ws, &scope.boundary, None).into_iter().collect();
    if sources.is_empty() {
        return;
    }
    // Reverse closure from the sources, never expanding *through* a
    // boundary fn (its callers stay clean — that channel is sanctioned).
    let rev = cg.reversed();
    let mut tainted: BTreeSet<usize> = sources.clone();
    let mut queue: VecDeque<usize> = sources.iter().copied().collect();
    while let Some(f) = queue.pop_front() {
        for &caller in &rev[f] {
            if boundary.contains(&caller) || tainted.contains(&caller) {
                continue;
            }
            tainted.insert(caller);
            queue.push_back(caller);
        }
    }
    let in_scope =
        |id: usize| -> bool { config.rules_for(&ws.fns[id].path).contains(&"oracle-taint") };
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test || !in_scope(id) {
            continue;
        }
        let mut seen: BTreeSet<(u32, usize)> = BTreeSet::new();
        for call in &cg.edges[id] {
            let callee = call.callee;
            if !tainted.contains(&callee) || boundary.contains(&callee) || in_scope(callee) {
                continue;
            }
            if !seen.insert((call.line, callee)) {
                continue;
            }
            // Forward path from the callee to the nearest source,
            // staying inside the tainted set.
            let trace = taint_trace(ws, cg, callee, &sources, &boundary);
            let source_name = trace
                .last()
                .map_or_else(|| ws.fns[callee].display(), |h: &ChainHop| h.func.clone());
            let mut chain = vec![ChainHop {
                func: f.display(),
                path: f.path.clone(),
                line: call.line,
            }];
            chain.extend(trace);
            out.push(WsFinding {
                path: f.path.clone(),
                raw: RawFinding {
                    rule: "oracle-taint",
                    line: call.line,
                    message: format!(
                        "`{}` reaches the hidden truth (`{}`) through `{}`; the paid probe \
                         is the only sanctioned channel (Theorems 1–5 cost accounting)",
                        f.display(),
                        source_name,
                        ws.fns[callee].display(),
                    ),
                    chain,
                },
            });
        }
    }
}

/// BFS from `start` restricted to tainted fns, stopping at the first
/// source; returns the hop list `start → … → source`.
fn taint_trace(
    ws: &Workspace,
    cg: &CallGraph,
    start: usize,
    sources: &BTreeSet<usize>,
    boundary: &BTreeSet<usize>,
) -> Vec<ChainHop> {
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; cg.edges.len()];
    parent[start] = Some((start, 0));
    let mut queue = VecDeque::from([start]);
    while let Some(f) = queue.pop_front() {
        if sources.contains(&f) {
            return hops(ws, &chain_to(&parent, start, f));
        }
        for c in &cg.edges[f] {
            if parent[c.callee].is_none() && !boundary.contains(&c.callee) {
                parent[c.callee] = Some((f, c.line));
                queue.push_back(c.callee);
            }
        }
    }
    hops(ws, &[(start, 0)])
}

/// Shared driver for the two forward-reachability rules: from each
/// entry point, BFS the call graph and report every reached fn whose
/// body contains a sink.
#[allow(clippy::too_many_arguments)] // a plain parameter list beats a one-shot config struct here
fn reach_rule(
    rule: &'static str,
    ws: &Workspace,
    cg: &CallGraph,
    sigs: &[Sig<'_>],
    scope: &RuleScope,
    config: &Config,
    sink_fn: fn(&Sig<'_>, usize, usize) -> Vec<(u32, &'static str)>,
    describe: fn(&str, &str, u32, &str) -> String,
    out: &mut Vec<WsFinding>,
) {
    let entries = select_fns(ws, &scope.entry, Some((config, rule)));
    if entries.is_empty() {
        return;
    }
    // Sinks per fn, computed once.
    let sinks: Vec<Vec<(u32, &'static str)>> = ws
        .fns
        .iter()
        .map(|f| match f.body {
            Some((lo, hi)) if !f.is_test => sink_fn(&sigs[f.file], lo, hi),
            _ => Vec::new(),
        })
        .collect();
    for &entry in &entries {
        let parents = cg.bfs_parents(entry);
        for (target, p) in parents.iter().enumerate() {
            if p.is_none() || target == entry || sinks[target].is_empty() {
                continue;
            }
            let (sink_line, sink_name) = sinks[target][0];
            let chain = chain_to(&parents, entry, target);
            let anchor = chain.first().map_or(ws.fns[entry].line, |&(_, l)| l);
            let mut chain = hops(ws, &chain);
            if let Some(last) = chain.last_mut() {
                last.line = sink_line;
            }
            out.push(WsFinding {
                path: ws.fns[entry].path.clone(),
                raw: RawFinding {
                    rule,
                    line: anchor,
                    message: describe(
                        &ws.fns[entry].display(),
                        &ws.fns[target].display(),
                        sink_line,
                        sink_name,
                    ),
                    chain,
                },
            });
        }
    }
}

/// `determinism-reach`: see [`RULES`].
pub fn determinism_reach(
    ws: &Workspace,
    cg: &CallGraph,
    sigs: &[Sig<'_>],
    scope: &RuleScope,
    config: &Config,
    out: &mut Vec<WsFinding>,
) {
    reach_rule(
        "determinism-reach",
        ws,
        cg,
        sigs,
        scope,
        config,
        det_sinks,
        |entry, target, line, sink| {
            format!(
                "`{entry}` transitively reaches non-deterministic `{sink}` in `{target}` \
                 (line {line}); fixed-seed tables require every reachable path to be \
                 deterministic"
            )
        },
        out,
    );
}

/// `panic-reach`: see [`RULES`]. Suppressed file-local panics still
/// count as sinks here — a `lint:allow(panic-hygiene)` justifies the
/// panic *locally*, not its reachability from a serving entry point.
pub fn panic_reach(
    ws: &Workspace,
    cg: &CallGraph,
    sigs: &[Sig<'_>],
    scope: &RuleScope,
    config: &Config,
    out: &mut Vec<WsFinding>,
) {
    reach_rule(
        "panic-reach",
        ws,
        cg,
        sigs,
        scope,
        config,
        panic_sinks,
        |entry, target, line, sink| {
            format!(
                "serving entry `{entry}` can reach `{sink}` in `{target}` (line {line}); \
                 a malformed request must never crash-stop a live node — return a typed \
                 error instead"
            )
        },
        out,
    );
}

/// `wal-protocol`: intra-function write-ahead ordering. Within each fn
/// of the scoped file(s), after a buffered write (`write_all` /
/// `set_len`) the code must fsync (`sync_data` / `sync_all`) before any
/// `self.field = …` state mutation, and must not leave the fn dirty.
/// This is a token-order dataflow approximation: early `?` returns on
/// the write itself are fine (the write failed, nothing was buffered).
pub fn wal_protocol(sig: &Sig<'_>, ast: &FileAst, out: &mut Vec<RawFinding>) {
    for f in &ast.fns {
        let Some((lo, hi)) = f.body else { continue };
        if f.is_test {
            continue;
        }
        let mut dirty: Option<u32> = None;
        for i in lo..hi.min(sig.len()) {
            if sig.punct(i + 1) == Some('(') && sig.punct(i.wrapping_sub(1)) == Some('.') {
                match sig.ident(i) {
                    Some("write_all" | "set_len") => {
                        dirty = Some(sig.line(i));
                        continue;
                    }
                    Some("sync_data" | "sync_all") => {
                        dirty = None;
                        continue;
                    }
                    _ => {}
                }
            }
            // `self.field =` / `self.field op=` while a write is unsynced.
            if sig.ident(i) == Some("self")
                && sig.punct(i + 1) == Some('.')
                && sig.ident(i + 2).is_some()
            {
                let op = sig.punct(i + 3);
                let is_assign = (op == Some('=') && sig.punct(i + 4) != Some('='))
                    || (matches!(op, Some('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'))
                        && sig.punct(i + 4) == Some('='));
                if is_assign {
                    if let Some(write_line) = dirty {
                        out.push(RawFinding::new(
                            "wal-protocol",
                            sig.line(i),
                            format!(
                                "`{}` mutates writer state before the buffered write at line \
                                 {write_line} is fsynced; recovery must never observe state \
                                 ahead of the durable log",
                                f.name
                            ),
                        ));
                    }
                }
            }
        }
        if let Some(write_line) = dirty {
            out.push(RawFinding::new(
                "wal-protocol",
                write_line,
                format!(
                    "`{}` returns with the buffered write at line {write_line} not fsynced; \
                     append must be durable before the tick executes",
                    f.name
                ),
            ));
        }
    }
}
