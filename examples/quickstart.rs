//! Quickstart: plant a community, let everyone reconstruct their
//! preferences, inspect cost and quality.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tmwia::prelude::*;

fn main() {
    // Act 1 — exact communities (the dramatic win): half of 2048
    // players share *identical* preferences over 2048 objects. Zero
    // Radius reconstructs them exactly at a tiny fraction of the solo
    // cost.
    let big = planted_community(2048, 2048, 1024, 0, 7);
    let eng0 = ProbeEngine::new(big.truth.clone());
    let all: Vec<PlayerId> = (0..2048).collect();
    let rec0 = reconstruct_known(&eng0, &all, 0.5, 0, &Params::practical(), 7);
    let exact = big
        .community()
        .iter()
        .filter(|&&p| &rec0.outputs[&p] == big.truth.row(p))
        .count();
    let rounds0 = big
        .community()
        .iter()
        .map(|&p| eng0.probes_of(p))
        .max()
        .unwrap();
    println!("[zero radius] {exact}/1024 community members exact after ≤ {rounds0} probes each (solo: 2048)\n");

    // Act 2 — noisy communities: 512 players × 512 objects, half of
    // them agree up to D = 8 disagreements; the rest are uniformly
    // random ("unrestricted diversity").
    let (n, m, d) = (512usize, 512usize, 8usize);
    let inst = planted_community(n, m, n / 2, d, 42);
    println!("instance : {}", inst.descriptor);
    println!(
        "community: {} players, realized diameter {}",
        inst.community().len(),
        inst.realized_diameter()
    );

    // The probe engine hides the truth: algorithms may only call
    // `probe`, at unit cost per revealed entry.
    let engine = ProbeEngine::new(inst.truth.clone());
    let players: Vec<PlayerId> = (0..n).collect();

    // Known (α, D): the Figure 1 main algorithm picks the right branch.
    let rec = reconstruct_known(&engine, &players, 0.5, d, &Params::practical(), 42);
    println!("branch   : {}", rec.branch);

    // Score the community with the paper's §1.1 metrics.
    let outputs: Vec<BitVec> = (0..n).map(|p| rec.outputs[&p].clone()).collect();
    let report = CommunityReport::evaluate(engine.truth(), &outputs, inst.community());
    println!(
        "quality  : discrepancy Δ = {} (bound 5D = {}), stretch ρ = {:.2}",
        report.discrepancy,
        5 * d,
        report.stretch
    );

    // Cost: the round complexity is the max per-player probe count.
    let community_rounds = inst
        .community()
        .iter()
        .map(|&p| engine.probes_of(p))
        .max()
        .unwrap();
    println!("cost     : {community_rounds} rounds for community members (solo would be {m})");
    assert!(report.discrepancy <= 5 * d, "Theorem 4.4 violated?!");
}
