//! Drifting fleet — repeated reconstruction in a changing world (§1's
//! "tracking dynamic environment" motivation, experiment E13's setting
//! as a narrative).
//!
//! A fleet of delivery drones shares a zone; zone conditions (binary:
//! corridor open/closed) drift every shift. Drones in the same zone
//! agree up to calibration error. Each shift the fleet re-runs the
//! interactive reconstruction; a drone that skips the refresh flies on
//! stale data and its error grows linearly with drift.
//!
//! ```text
//! cargo run --release --example drifting_fleet
//! ```

use tmwia::model::generators::{DriftConfig, DriftingWorld};
use tmwia::prelude::*;

fn main() {
    let config = DriftConfig {
        n: 256,
        m: 256,
        community_size: 128,
        d: 4,
        center_drift: 10,
        noise_churn: 12,
    };
    let mut world = DriftingWorld::new(config, 2026);
    let players: Vec<PlayerId> = (0..256).collect();

    // One drone keeps its shift-0 map forever.
    let engine0 = ProbeEngine::new(world.truth().clone());
    let rec0 = reconstruct_known(&engine0, &players, 0.5, 4, &Params::practical(), 0);
    let lazy_drone = world.community()[0];
    let stale_map = rec0.outputs[&lazy_drone].clone();

    println!("shift | fresh Δ (bound 20) | stale drone err | rounds");
    println!("------+--------------------+-----------------+-------");
    for shift in 0..6 {
        if shift > 0 {
            world.advance();
        }
        let community = world.community().to_vec();
        let engine = ProbeEngine::new(world.truth().clone());
        let rec = reconstruct_known(
            &engine,
            &players,
            0.5,
            4,
            &Params::practical(),
            shift as u64,
        );
        let outputs: Vec<BitVec> = (0..256).map(|p| rec.outputs[&p].clone()).collect();
        let fresh = discrepancy(world.truth(), &outputs, &community);
        let stale_err = stale_map.hamming(world.truth().row(lazy_drone));
        let rounds = community
            .iter()
            .map(|&p| engine.probes_of(p))
            .max()
            .unwrap();
        println!("{shift:>5} | {fresh:>18} | {stale_err:>15} | {rounds:>6}");
    }
    println!("\nfresh reconstructions hold the 5D bound; the stale map decays with drift.");
}
