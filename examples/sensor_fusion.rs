//! Sensor fusion — "tracking dynamic environment by unreliable
//! sensors … fall[s] under this interactive framework" (paper §1).
//!
//! A field of sensors each observes the same environment of binary
//! events, but location and calibration skew each sensor's readings:
//! sensors in the same zone agree up to a small Hamming distance, while
//! zones differ arbitrarily. Taking a measurement is expensive
//! (energy), so sensors want to leverage the shared log (billboard) to
//! estimate their full observation vector with few measurements.
//!
//! This example contrasts the paper's assumption-free algorithm with a
//! spectral reconstruction that implicitly assumes a low-rank world —
//! fine when zones are few and clean, wrong when the field is messy.
//!
//! ```text
//! cargo run --release --example sensor_fusion
//! ```

use tmwia::prelude::*;

fn run_case(name: &str, inst: &Instance, d_bound: usize) {
    let n = inst.n();
    let m = inst.m();
    let players: Vec<PlayerId> = (0..n).collect();
    let zone = &inst.communities[0];
    let alpha = (zone.len() as f64 / n as f64).max(0.05);

    // Paper's algorithm.
    let engine = ProbeEngine::new(inst.truth.clone());
    let rec = reconstruct_known(&engine, &players, alpha, d_bound, &Params::practical(), 3);
    let outputs: Vec<BitVec> = (0..n).map(|p| rec.outputs[&p].clone()).collect();
    let ours = CommunityReport::evaluate(engine.truth(), &outputs, zone);

    // Spectral baseline at a m/4 measurement budget.
    let eng_spec = ProbeEngine::new(inst.truth.clone());
    let cfg = SpectralConfig {
        probes_per_player: m / 4,
        rank: 4,
        iterations: 25,
    };
    let spec = spectral_reconstruct(&eng_spec, &players, &cfg, 3);
    let spec_outputs: Vec<BitVec> = (0..n).map(|p| spec[&p].clone()).collect();
    let theirs = CommunityReport::evaluate(eng_spec.truth(), &spec_outputs, zone);

    println!(
        "{name:<34} zone diam {:>3} | tmwia mean err {:>6.1} | spectral mean err {:>6.1}",
        ours.diameter, ours.mean_error, theirs.mean_error
    );
}

fn main() {
    let (n, m) = (384usize, 384usize);
    println!("sensors = {n}, events = {m}; error = wrong event estimates per sensor\n");

    // Clean world: 4 well-separated zone archetypes, light noise —
    // the regime where low-rank assumptions are valid.
    let clean = orthogonal_types(n, m, 4, 0.02, 11);
    run_case(
        "clean field (4 orthogonal zones)",
        &clean,
        (0.1 * m as f64) as usize,
    );

    // Messy world: 16 zones with arbitrary (dense random) signatures —
    // no singular-value gap for the spectral method to exploit.
    let messy = adversarial_clusters(n, m, 16, 6, 11);
    run_case("messy field (16 arbitrary zones)", &messy, 6);

    // Hostile world: per-sensor calibration masks on top of the messy
    // field.
    let hostile = tmwia::model::generators::smeared_clusters(n, m, 8, 2, 2, 11);
    run_case("hostile field (smeared zones)", &hostile, 6);

    println!("\nthe paper's point: the interactive algorithm never assumed a clean field.");
}
