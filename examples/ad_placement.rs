//! Ad placement — the paper's own motivating scenario (§1):
//!
//! > "Probing takes place each time the advertiser provides a user with
//! > an ad for some product: if the user clicks on this ad, the
//! > appropriate matrix entry is set to 1 … The task is to reconstruct,
//! > for each user, his preference vector."
//!
//! Users arrive with *unknown* community structure — the advertiser
//! knows neither which users have similar tastes (α) nor how similar
//! they are (D). This example runs the §6 unknown-D wrapper and shows
//! what the advertiser learns per ad impression spent, against the two
//! obvious alternatives: showing every user every ad (solo) and a
//! magical segment oracle.
//!
//! ```text
//! cargo run --release --example ad_placement
//! ```

use tmwia::prelude::*;

fn main() {
    // 600 users, 600 ad products. Three equal latent market segments,
    // each internally consistent up to 10 products.
    let (n, m) = (600usize, 600usize);
    let inst = adversarial_clusters(n, m, 3, 10, 7);
    println!("marketplace: {}", inst.descriptor);

    let engine = ProbeEngine::new(inst.truth.clone());
    let users: Vec<PlayerId> = (0..n).collect();

    // The advertiser runs the unknown-D algorithm for the *largest*
    // segment's fraction (α = 1/3 is a safe lower bound for "some big
    // segment exists"); it needs no knowledge of D.
    let res = reconstruct_unknown_d(&engine, &users, 1.0 / 3.0, &Params::practical(), 7);

    println!("\nper-segment reconstruction quality (click-prediction errors / user):");
    for (idx, segment) in inst.communities.iter().enumerate() {
        let outputs: Vec<BitVec> = (0..n).map(|p| res.outputs[&p].clone()).collect();
        let report = CommunityReport::evaluate(engine.truth(), &outputs, segment);
        let rounds = segment.iter().map(|&p| engine.probes_of(p)).max().unwrap();
        println!(
            "  segment {idx}: {:>3} users, diameter {:>2} → mean err {:>6.1}, max err {:>3}, impressions/user ≤ {rounds}",
            segment.len(),
            report.diameter,
            report.mean_error,
            report.discrepancy,
        );
    }

    // Alternative 1: show every user every ad — perfect but m
    // impressions per user.
    println!("\nsolo        : 0 errors at {m} impressions/user");

    // Alternative 2: a magical oracle that already knows the segments.
    let eng_oracle = ProbeEngine::new(inst.truth.clone());
    let seg = &inst.communities[0];
    let oracle_out = oracle_community(&eng_oracle, seg, 1, 7);
    let oracle_outputs: Vec<BitVec> = (0..n)
        .map(|p| {
            oracle_out
                .get(&p)
                .cloned()
                .unwrap_or_else(|| BitVec::zeros(m))
        })
        .collect();
    let oracle_report = CommunityReport::evaluate(eng_oracle.truth(), &oracle_outputs, seg);
    let oracle_rounds = seg.iter().map(|&p| eng_oracle.probes_of(p)).max().unwrap();
    println!(
        "oracle      : max err {} at {} impressions/user (knows segments a priori — unrealizable)",
        oracle_report.discrepancy, oracle_rounds
    );
}
