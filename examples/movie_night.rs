//! Movie night — the anytime algorithm under unknown community
//! structure (§6).
//!
//! A streaming service's users don't come labelled with their taste
//! cluster. Some belong to a broad "likes blockbusters" community, a
//! subset to a tighter "likes 90s action" community, a niche inside
//! that to "likes exactly these 12 directors". The anytime algorithm
//! doubles down on smaller α phase by phase: the longer a user keeps
//! rating movies, the tighter the community whose collective knowledge
//! they inherit.
//!
//! ```text
//! cargo run --release --example movie_night
//! ```

use tmwia::prelude::*;

fn main() {
    // 512 users × 512 movies; nested taste communities around one
    // profile: 256 loose (D ≤ 48), 128 medium (D ≤ 16), 64 tight (D ≤ 4).
    let n = 512usize;
    let specs = [(256usize, 48usize), (128, 16), (64, 4)];
    let inst = nested_communities(n, n, &specs, 99);
    println!("catalogue: {}", inst.descriptor);

    let engine = ProbeEngine::new(inst.truth.clone());
    let users: Vec<PlayerId> = (0..n).collect();

    // Run three doubling phases (α = 1/2, 1/4, 1/8).
    let report = anytime(&engine, &users, 3, &Params::practical(), 99);

    println!("\nwatch-history grows → recommendations sharpen:");
    println!(
        "{:<7} {:<8} {:<10} {:<12} {:<12} {:<12}",
        "phase", "alpha", "ratings", "loose Δ", "medium Δ", "tight Δ"
    );
    for (j, phase) in report.phases.iter().enumerate() {
        let outputs: Vec<BitVec> = (0..n).map(|p| phase.outputs[&p].clone()).collect();
        let discs: Vec<usize> = inst
            .communities
            .iter()
            .map(|c| discrepancy(engine.truth(), &outputs, c))
            .collect();
        println!(
            "{:<7} {:<8.3} {:<10} {:<12} {:<12} {:<12}",
            j + 1,
            phase.alpha,
            phase.rounds_after,
            discs[0],
            discs[1],
            discs[2]
        );
    }

    let final_outputs: Vec<BitVec> = (0..n).map(|p| report.final_outputs()[&p].clone()).collect();
    let tight = &inst.communities[2];
    let tight_report = CommunityReport::evaluate(engine.truth(), &final_outputs, tight);
    println!(
        "\ntight community ends at stretch ρ = {:.2} (diameter {}, Δ = {})",
        tight_report.stretch, tight_report.diameter, tight_report.discrepancy
    );
}
