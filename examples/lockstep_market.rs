//! Lockstep market — the paper's execution model taken literally, plus
//! on-the-fly subcommunity discovery (§1.1).
//!
//! Uses the round-accurate runtime (`run_rounds`): each round every
//! trader probes exactly one asset and posts the outcome; reads see the
//! board as of the round's start. A crowd-following online policy shows
//! what naive majority-adoption buys (and where it fails when several
//! communities disagree), and afterwards the billboard's posted outputs
//! are clustered at a ladder of scales — "refining clusterings
//! on-the-fly" — to recover the hidden market segments.
//!
//! ```text
//! cargo run --release --example lockstep_market
//! ```

use rand::seq::SliceRandom;
use tmwia::billboard::{run_rounds, CrowdPolicy, RoundPolicy};
use tmwia::core::discover_communities;
use tmwia::model::rng::{rng_for, tags};
use tmwia::prelude::*;

fn main() {
    // 3 segments of traders over 256 assets, plus the full-information
    // reconstruction for comparison.
    let (n, m) = (96usize, 256usize);
    let inst = adversarial_clusters(n, m, 3, 4, 2026);
    println!("market: {}\n", inst.descriptor);

    // --- Act 1: literal lockstep execution with an online policy. ---
    let engine = ProbeEngine::new(inst.truth.clone());
    let players: Vec<PlayerId> = (0..n).collect();
    let budget = 48; // probes per trader, ≪ m
    let mut policies: Vec<Box<dyn RoundPolicy>> = players
        .iter()
        .map(|&p| {
            let mut order: Vec<ObjectId> = (0..m).collect();
            order.shuffle(&mut rng_for(2026, tags::BASELINE, p as u64));
            Box::new(CrowdPolicy::new(order, budget, m)) as Box<dyn RoundPolicy>
        })
        .collect();
    let res = run_rounds(&engine, &players, &mut policies, 10_000);
    println!(
        "lockstep: {} rounds, {} posts on the board, max cost/trader = {}",
        res.rounds,
        res.board.log().len(),
        engine.max_probes()
    );
    for (i, seg) in inst.communities.iter().enumerate() {
        let mean: f64 = seg
            .iter()
            .map(|&p| res.estimates[p].hamming(inst.truth.row(p)) as f64)
            .sum::<f64>()
            / seg.len() as f64;
        println!(
            "  segment {i}: crowd-following mean error {mean:>6.1} / {m} assets \
             (majority voting across *disagreeing* segments is noise)"
        );
    }

    // --- Act 2: the paper's algorithm at the same world. ---
    let eng2 = ProbeEngine::new(inst.truth.clone());
    let rec = reconstruct_known(&eng2, &players, 1.0 / 3.0, 4, &Params::practical(), 2026);
    for (i, seg) in inst.communities.iter().enumerate() {
        let mean: f64 = seg
            .iter()
            .map(|&p| rec.outputs[&p].hamming(inst.truth.row(p)) as f64)
            .sum::<f64>()
            / seg.len() as f64;
        println!(
            "  segment {i}: tmwia ({}) mean error {mean:>6.1} at ≤ {} probes/trader",
            rec.branch,
            eng2.max_probes()
        );
    }

    // --- Act 3: discover the segments from the posted outputs. ---
    println!("\nsubcommunity discovery on the posted outputs (§1.1):");
    for scale in [8usize, 64, 200] {
        let clustering = discover_communities(&rec.outputs, scale, 4);
        let sizes: Vec<usize> = clustering
            .communities
            .iter()
            .map(|c| c.members.len())
            .collect();
        println!(
            "  scale D = {scale:>3}: {} communities, sizes {sizes:?}",
            sizes.len()
        );
    }
}
